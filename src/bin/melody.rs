//! `melody` — command-line front end to the characterization framework.
//!
//! ```text
//! melody devices                      # list device presets with specs
//! melody workloads [--suite NAME]     # list the 265-workload registry
//! melody probe <device | --topology T> # idle latency + peak bandwidth
//! melody mio <device> [--threads N] [--noise N] [--accesses N]
//! melody mlc <device> [--rw R] [--delay CYCLES] [--requests N]
//! melody run <workload> <device | --topology T> [--refs N]
//!            [--platform NAME] [--json] [--out PATH] [--windows N]
//! melody cpmu <device> [--accesses N] # white-box component attribution
//! melody campaign <spec.json> [--shard i/N] [--journal PATH] [--resume]
//!                 [--topology T] [--json] [--progress]
//! melody degraded [--scale S] [--journal PATH] [--resume] [--limit N] [--json]
//! melody tiering [--scale S] [--json]    # per-policy migration comparison
//! melody trace <device> [--out PATH] [--workloads N] [--refs N]
//! melody diff <a.json> <b.json> [--rel-tol X] [--abs-tol X] [--json]
//! melody report <run.json> [--out PATH]
//! melody serve [--port N] [--state-dir DIR] [--queue-depth N]
//!              [--admission-limit N] [--deadline-ms N] [--max-attempts N]
//!              [--log text|json]
//! melody submit <spec.json> [--server HOST:PORT] [--client NAME]
//!               [--deadline-ms N] [--retries N] [--wait] [--poll-ms N] [--json]
//! melody status [job-id] [--server HOST:PORT] [--result] [--wait] [--watch]
//!               [--poll-ms N] [--json]
//! melody drain [--server HOST:PORT]
//! ```
//!
//! Observability: `--progress` on `campaign`/`run` prints a stderr
//! heartbeat (cells done/total, resolution mix, moving-rate ETA —
//! stdout stays byte-identical); a running server exposes Prometheus
//! text exposition at `GET /metrics` and leveled structured logs via
//! `serve --log json`; `status --watch` follows jobs live, and `--wait`
//! polls with capped backoff starting from `--poll-ms`. See
//! TELEMETRY.md "Live metrics and progress".
//!
//! Devices: local, numa, cxl-a, cxl-b, cxl-c, cxl-d, cxl-a+numa, ...,
//! cxl-d-x2. Platforms: spr2s, emr2s, emr2s-prime, skx2s, skx8s.
//!
//! `--topology <spec.json>` replaces the device keyword with a
//! declarative fabric topology (host / switch / expander nodes; see
//! EXPERIMENTS.md "Topologies"). `probe` and `run` take it instead of
//! the `<device>` positional; `melody campaign --topology T` appends the
//! topology to the campaign spec's device axis. A single-expander
//! topology is byte-identical to naming its device class directly.
//!
//! Global flags: `--jobs N` (worker threads), `--telemetry
//! off|metrics|trace` (instrumentation level, default off — see
//! TELEMETRY.md), `--cadence-ns N` (gauge sampling window), and
//! `--cache DIR` / `--no-cache` (content-addressed result cache; see
//! EXPERIMENTS.md "Campaigns and the result cache"). `melody campaign`
//! expands a platform × device × fault × workload spec into cells,
//! loads warm cells from the cache (default `.melody-cache`), simulates
//! only the misses, and emits byte-identical output for any cache,
//! `--shard i/N` or `--jobs` mix. With
//! telemetry enabled, every command appends a metrics table to its
//! report (stdout) and a wall-clock phase profile to stderr. `melody
//! trace` runs a small deterministic population sweep in trace mode and
//! exports a Chrome `trace_event` JSON viewable in Perfetto; the export
//! is byte-identical for a fixed seed at any `--jobs` setting.
//!
//! `probe`, `mio`, `mlc` and `run` accept `--faults <regime>` to attach a
//! deterministic fault-injection regime (none, crc-storm, retrain,
//! refresh-storm, poison, thermal, harsh) to the device. `degraded`
//! sweeps every regime across the four CXL devices, checkpointing each
//! finished cell to `--journal` so a killed sweep restarted with
//! `--resume` skips finished cells and emits byte-identical output.
//!
//! `probe`, `run` and `campaign` accept `--policy <name>` (static,
//! lru-hotness, clock, bandwidth-aware, spa-guided) to put an online
//! page-migration tier in front of the device: pages start on the slow
//! (target) tier and the policy promotes hot pages into local DRAM at
//! epoch boundaries, with migration traffic costed on the simulated
//! link. `--page-bytes N` and `--migrate-budget-gbps X` tune the page
//! size and the migration pacing budget. `--policy static` never
//! migrates and is byte-identical to omitting the flag. On `campaign`
//! the policy joins the spec's grid as an extra axis (and the cell's
//! cache identity). `melody tiering` runs the standing per-policy
//! comparison on a phased hot/cold workload (see EXPERIMENTS.md
//! "Tiering policies").
//!
//! `run --json` emits a `melody-run` insight document: the whole-run
//! breakdown plus the windowed attribution timeline, flagged anomaly
//! windows, and the full telemetry export (see TELEMETRY.md). `melody
//! diff` compares two such documents (or any two `--json` outputs)
//! under optional tolerances and exits nonzero on divergence — the CI
//! regression gate. `melody report` renders a document into a
//! self-contained static HTML page with inline SVG charts.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use melody::prelude::*;
use melody_mem::{CpmuDevice, FaultConfig, PolicyKind, TieringConfig};
use melody_workloads::mlc::{loaded_latency, MlcConfig};
use melody_workloads::Suite;

// Device / platform name resolution lives in `melody::campaign`
// (re-exported through the prelude) so the `campaign` spec expander and
// the CLI agree on the vocabulary.

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag_u64(args: &[String], name: &str, default: u64) -> u64 {
    flag(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Attaches the `--faults <regime>` fault-injection regime to a device
/// spec, if requested. An inert regime (`none`) leaves the spec
/// untouched so output stays byte-identical to a fault-free build.
fn apply_faults(spec: DeviceSpec, args: &[String]) -> DeviceSpec {
    let Some(name) = flag(args, "--faults") else {
        return spec;
    };
    let Some(fc) = FaultConfig::by_name(&name) else {
        eprintln!(
            "unknown fault regime `{name}` (known: {})",
            melody_mem::faults::REGIMES.join(", ")
        );
        std::process::exit(2);
    };
    if fc.is_inert() {
        spec
    } else {
        spec.with_faults(fc)
    }
}

/// Attaches a `--policy <name>` adaptive tiering layer to a device
/// spec, with `local` (the platform's local DRAM) as the fast tier.
/// The `static` keyword — and an absent flag — attaches nothing, so
/// output stays byte-identical to a policy-free invocation.
/// `--page-bytes N` and `--migrate-budget-gbps X` tune the config;
/// an unknown policy or invalid knob exits 2 naming every valid
/// spelling, the same convention fault and topology validation use.
fn apply_policy(spec: DeviceSpec, args: &[String], local: &DeviceSpec) -> DeviceSpec {
    let Some(name) = flag(args, "--policy") else {
        return spec;
    };
    let Some(kind) = PolicyKind::parse(&name) else {
        eprintln!("{}", melody_mem::policy::unknown_policy_error(&name));
        std::process::exit(2);
    };
    if kind == PolicyKind::Static {
        return spec;
    }
    let mut tc = TieringConfig::new(kind);
    if let Some(p) = flag(args, "--page-bytes").and_then(|v| v.parse().ok()) {
        tc.page_bytes = p;
    }
    if let Some(b) = flag(args, "--migrate-budget-gbps").and_then(|v| v.parse().ok()) {
        tc.migrate_budget_gbps = b;
    }
    if let Err(e) = tc.validate() {
        eprintln!("tiering: {e}");
        std::process::exit(2);
    }
    spec.with_tiering(tc, local.clone())
}

/// Loads, validates and lowers a `--topology <spec.json>` fabric,
/// exiting 2 with the validation error (which names the offending node
/// and lists the valid spellings) on failure.
fn load_topology_or_exit(path: &str) -> DeviceSpec {
    match TopologySpec::load(path).and_then(|t| t.validate()) {
        Ok(fabric) => fabric.lower(),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

/// Loads and validates a `--topology <spec.json>` fabric for the
/// campaign device axis, keeping the declarative spec (the campaign
/// expander lowers it itself, so it lands in the report under the
/// topology's name).
fn load_topology_spec_or_exit(path: &str) -> TopologySpec {
    match TopologySpec::load(path).and_then(|t| t.validate()) {
        Ok(fabric) => fabric.spec().clone(),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: melody <devices|workloads|probe|mio|mlc|run|cpmu|campaign|degraded|tiering|trace|diff|report|serve|submit|status|drain> [args]\n\
         \u{20}      [--jobs N] [--telemetry off|metrics|trace] [--cadence-ns N]\n\
         \u{20}      [--cache DIR] [--no-cache] [--fidelity detailed|sampled|fast]\n\
         \u{20}      [--sample-warmup N] [--sample-window N] [--sample-period N]\n\
         see `src/bin/melody.rs` header or README for details"
    );
    std::process::exit(2);
}

/// Consumes a global `--jobs N` flag (worker threads for parallel
/// experiment sections; 1 = serial, default = all cores).
fn take_jobs_flag(args: &mut Vec<String>) {
    if let Some(i) = args.iter().position(|a| a == "--jobs") {
        let n = args
            .get(i + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| usage());
        melody::exec::set_jobs(n);
        args.drain(i..i + 2);
    }
}

/// Consumes the global fidelity flags. `--fidelity detailed|sampled|fast`
/// selects the simulation tier for every run the command performs
/// (default detailed — byte-identical to builds without the flag);
/// `--sample-warmup/-window/-period N` override the sampled tier's
/// schedule in slots. Campaign specs can still override per grid.
fn take_fidelity_flags(args: &mut Vec<String>) {
    if let Some(i) = args.iter().position(|a| a == "--fidelity") {
        let f = args
            .get(i + 1)
            .and_then(|v| melody_cpu::Fidelity::parse(v))
            .unwrap_or_else(|| usage());
        melody::exec::set_fidelity(f);
        args.drain(i..i + 2);
    }
    let (mut warmup, mut window, mut period) = (0u64, 0u64, 0u64);
    for (flag, slot) in [
        ("--sample-warmup", &mut warmup),
        ("--sample-window", &mut window),
        ("--sample-period", &mut period),
    ] {
        if let Some(i) = args.iter().position(|a| a == flag) {
            *slot = args
                .get(i + 1)
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| usage());
            args.drain(i..i + 2);
        }
    }
    if warmup + window + period > 0 {
        melody::exec::set_sampling(warmup, window, period);
        if let Err(e) = melody::exec::sampling().validate() {
            eprintln!("invalid sampling schedule: {e}");
            std::process::exit(2);
        }
    }
}

/// Consumes the global telemetry flags: `--telemetry off|metrics|trace`
/// selects the instrumentation level (default off: the zero-cost path,
/// byte-identical output), `--cadence-ns N` sets the gauge sampling
/// window in simulated nanoseconds.
fn take_telemetry_flags(args: &mut Vec<String>) {
    if let Some(i) = args.iter().position(|a| a == "--telemetry") {
        let mode = args
            .get(i + 1)
            .and_then(|v| melody_telemetry::Mode::parse(v))
            .unwrap_or_else(|| usage());
        melody_telemetry::set_mode(mode);
        args.drain(i..i + 2);
    }
    if let Some(i) = args.iter().position(|a| a == "--cadence-ns") {
        let n = args
            .get(i + 1)
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or_else(|| usage());
        melody_telemetry::set_cadence_ns(n);
        args.drain(i..i + 2);
    }
}

/// Consumes the global cache flags. `--cache DIR` installs a
/// content-addressed result cache rooted at DIR for every
/// cache-aware code path (campaigns, population sweeps, figure
/// drivers); `--no-cache` forces cache-free execution (it also
/// suppresses the default `.melody-cache` that `melody campaign`
/// would otherwise install). Returns `true` when `--no-cache` was
/// given.
fn take_cache_flags(args: &mut Vec<String>) -> bool {
    let mut no_cache = false;
    if let Some(i) = args.iter().position(|a| a == "--no-cache") {
        no_cache = true;
        args.remove(i);
    }
    if let Some(i) = args.iter().position(|a| a == "--cache") {
        let dir = args.get(i + 1).cloned().unwrap_or_else(|| usage());
        args.drain(i..i + 2);
        if no_cache {
            eprintln!("--cache and --no-cache are mutually exclusive");
            std::process::exit(2);
        }
        match ResultCache::open(&dir) {
            Ok(c) => melody::cache::set_global(Some(c)),
            Err(e) => {
                eprintln!("cannot open cache {dir}: {e}");
                std::process::exit(2);
            }
        }
    }
    no_cache
}

/// Drains collected telemetry after a command: metrics join the report
/// on stdout, the wall-clock profile goes to stderr (host time is
/// nondeterministic, so it must never mix into comparable output).
fn finish_telemetry() {
    if !melody_telemetry::metrics_on() {
        return;
    }
    let c = melody_telemetry::collect();
    if !c.metrics.is_empty() {
        print!("{}", c.metrics.render());
    }
    if !c.profile.is_empty() {
        eprint!("{}", c.profile.render());
    }
}

/// RAII guard for the `--progress` stderr heartbeat thread: dropping it
/// stops the thread and, when a cell sink is attached (campaigns),
/// prints the final progress line so short runs still report once.
struct HeartbeatGuard {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    sink: Option<Arc<Progress>>,
}

impl Drop for HeartbeatGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        if let Some(sink) = &self.sink {
            eprintln!("progress: {}", sink.snapshot().render());
        }
    }
}

/// Spawns the `--progress` heartbeat: every `period` it re-renders the
/// sink's snapshot (or, with no sink, the elapsed wall clock alone —
/// single `run` invocations have no cell grid) and prints the line to
/// stderr when it changed, so a stalled run stays quiet. All output is
/// stderr: comparable stdout is untouched.
fn spawn_heartbeat(sink: Option<Arc<Progress>>, period: Duration) -> HeartbeatGuard {
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let thread_sink = sink.clone();
    let started = std::time::Instant::now();
    let handle = std::thread::spawn(move || {
        let mut last = String::new();
        while !stop2.load(Ordering::Relaxed) {
            let line = match &thread_sink {
                Some(p) => {
                    let s = p.snapshot();
                    // Quiet until begin() sizes the run.
                    if s.total == 0 {
                        String::new()
                    } else {
                        s.render()
                    }
                }
                None => format!("elapsed {}s", started.elapsed().as_secs()),
            };
            if !line.is_empty() && line != last {
                eprintln!("progress: {line}");
                last = line;
            }
            // Sleep in short steps so drop() joins promptly.
            let mut slept = Duration::ZERO;
            while slept < period && !stop2.load(Ordering::Relaxed) {
                let step = (period - slept).min(Duration::from_millis(25));
                std::thread::sleep(step);
                slept += step;
            }
        }
    });
    HeartbeatGuard {
        stop,
        handle: Some(handle),
        sink,
    }
}

/// Consumes the `--progress` flag shared by `campaign` and `run`,
/// arming the process-wide heartbeat period (the flag is a boolean;
/// the period is fixed at 500 ms).
fn progress_requested(args: &[String]) -> bool {
    if args.iter().any(|a| a == "--progress") {
        melody::progress::set_heartbeat_ms(500);
    }
    melody::progress::heartbeat_ms().is_some()
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    take_jobs_flag(&mut args);
    take_fidelity_flags(&mut args);
    take_telemetry_flags(&mut args);
    let no_cache = take_cache_flags(&mut args);
    let Some(cmd) = args.first() else { usage() };
    if cmd == "campaign" && !no_cache && !melody::cache::global_enabled() {
        // Campaigns default to a local cache; every other command is
        // cache-free unless --cache is given.
        match ResultCache::open(".melody-cache") {
            Ok(c) => melody::cache::set_global(Some(c)),
            Err(e) => {
                eprintln!("cannot open cache .melody-cache: {e}");
                std::process::exit(2);
            }
        }
    }
    match cmd.as_str() {
        "devices" => cmd_devices(),
        "workloads" => cmd_workloads(&args[1..]),
        "probe" => cmd_probe(&args[1..]),
        "mio" => cmd_mio(&args[1..]),
        "mlc" => cmd_mlc(&args[1..]),
        "run" => cmd_run(&args[1..]),
        "cpmu" => cmd_cpmu(&args[1..]),
        "campaign" => cmd_campaign(&args[1..]),
        "degraded" => cmd_degraded(&args[1..]),
        "tiering" => cmd_tiering(&args[1..]),
        "trace" => cmd_trace(&args[1..]),
        "diff" => cmd_diff(&args[1..]),
        "report" => cmd_report(&args[1..]),
        "serve" => cmd_serve(&args[1..], no_cache),
        "submit" => cmd_submit(&args[1..]),
        "status" => cmd_status(&args[1..]),
        "drain" => cmd_drain(&args[1..]),
        _ => usage(),
    }
    // Cache effectiveness is diagnostic output: stderr only, never into
    // comparable stdout.
    if let Some(stats) = melody::cache::global_stats() {
        eprintln!("{}", stats.render());
    }
    finish_telemetry();
}

fn cmd_devices() {
    println!("{:12} {:>12} {:>10}", "device", "nominal(ns)", "class");
    for (name, spec) in [
        ("local", presets::local_emr()),
        ("numa", presets::numa_emr()),
        ("cxl-a", presets::cxl_a()),
        ("cxl-b", presets::cxl_b()),
        ("cxl-c", presets::cxl_c()),
        ("cxl-d", presets::cxl_d()),
        ("cxl-a+numa", presets::cxl_a().with_numa_hop()),
        ("cxl-d+switch", presets::cxl_d().with_switch_hop()),
        ("cxl-d-x2", presets::cxl_d().interleaved(2)),
        ("skx-410", presets::skx8s_410()),
    ] {
        let class = match &spec {
            DeviceSpec::Imc(_) => "iMC",
            DeviceSpec::Cxl(_) => "CXL",
            DeviceSpec::Hopped { .. } => "hopped",
            DeviceSpec::Interleaved { .. } => "interleave",
            DeviceSpec::Split { .. } => "tiered",
            DeviceSpec::Tiered { .. } => "migrating",
            DeviceSpec::Switch { .. } => "switched",
        };
        println!(
            "{:12} {:>12.0} {:>10}",
            name,
            spec.nominal_latency_ns(),
            class
        );
    }
}

fn cmd_workloads(args: &[String]) {
    let suite_filter = flag(args, "--suite");
    let mut shown = 0;
    for w in registry::all() {
        if let Some(f) = &suite_filter {
            if !w.suite.label().eq_ignore_ascii_case(f) {
                continue;
            }
        }
        let p = &w.phases[0];
        println!(
            "{:32} {:10} threads {:>2}  uops/mem {:>6.1}  dep {:>4.2}  ws {:>6} MiB",
            w.name,
            w.suite.label(),
            w.threads,
            p.uops_per_mem,
            p.dependence,
            p.working_set >> 20,
        );
        shown += 1;
    }
    println!("-- {shown} workloads");
    let _ = Suite::Redis; // keep the import meaningful for --suite docs
}

fn cmd_probe(args: &[String]) {
    let device = args.first().filter(|a| !a.starts_with("--"));
    let spec = match (device, flag(args, "--topology")) {
        (Some(_), Some(_)) => {
            eprintln!("probe takes either a device keyword or --topology, not both");
            std::process::exit(2);
        }
        (Some(n), None) => device_by_name(n).unwrap_or_else(|| usage()),
        (None, Some(path)) => load_topology_or_exit(&path),
        (None, None) => usage(),
    };
    let spec = apply_faults(spec, args);
    // Probe has no platform axis; the tiering fast tier is the default
    // platform's local DRAM.
    let spec = apply_policy(spec, args, &presets::local_emr());
    let mut dev = spec.build(1);
    let idle = probe::idle_latency_ns(dev.as_mut(), 5_000);
    let mut dev2 = spec.build(1);
    let bw = probe::peak_bandwidth_gbps(dev2.as_mut(), 1.0, 40_000, 256);
    println!(
        "{}: idle {:.0} ns (nominal {:.0}), peak read {:.1} GB/s",
        spec.name(),
        idle,
        spec.nominal_latency_ns(),
        bw
    );
    print_ras(&{
        let mut ras = dev.stats().ras;
        ras.merge(&dev2.stats().ras);
        ras
    });
}

/// Prints a one-line RAS summary when any fault events occurred.
fn print_ras(ras: &melody_mem::RasCounters) {
    if !ras.is_zero() {
        println!(
            "  ras: corr {} uncorr {} retrains {} refresh {} throttle {:.1} us",
            ras.correctable,
            ras.uncorrectable,
            ras.retrains,
            ras.refresh_storms,
            ras.throttle_ns() as f64 / 1_000.0
        );
    }
}

fn cmd_mio(args: &[String]) {
    let Some(spec) = args.first().and_then(|n| device_by_name(n)) else {
        usage()
    };
    let spec = apply_faults(spec, args);
    let cfg = melody_mio::MioConfig {
        chase_threads: flag_u64(args, "--threads", 1) as usize,
        noise_threads: flag_u64(args, "--noise", 0) as usize,
        accesses: flag_u64(args, "--accesses", 40_000),
        ..Default::default()
    };
    let r = melody_mio::run(&spec, &cfg);
    let p = |pp| melody::report::percentile_cell(&r.latency, pp);
    println!(
        "{}: p50 {} ns  p99 {} ns  p99.9 {} ns  gap {} ns  bw {:.1} GB/s",
        spec.name(),
        p(50.0),
        p(99.0),
        p(99.9),
        r.tail_gap_ns,
        r.bandwidth_gbps
    );
}

fn cmd_mlc(args: &[String]) {
    let Some(spec) = args.first().and_then(|n| device_by_name(n)) else {
        usage()
    };
    let spec = apply_faults(spec, args);
    let read_frac = flag(args, "--rw")
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.0);
    let cfg = MlcConfig {
        read_frac,
        delay_cycles: flag_u64(args, "--delay", 0),
        total_requests: flag_u64(args, "--requests", 40_000),
        ..MlcConfig::default()
    };
    let p = loaded_latency(&spec, &cfg);
    println!(
        "{}: loaded latency {:.0} ns (p99.9 {} ns) at {:.1} GB/s (delay {} cyc, read {:.0}%)",
        spec.name(),
        p.mean_latency_ns(),
        melody::report::percentile_cell(&p.latency, 99.9),
        p.bandwidth_gbps,
        cfg.delay_cycles,
        read_frac * 100.0
    );
    print_ras(&p.stats.ras);
}

fn cmd_run(args: &[String]) {
    let Some(wname) = args.first() else { usage() };
    let Some(w) = registry::by_name(wname) else {
        eprintln!("unknown workload {wname} (try `melody workloads`)");
        std::process::exit(2);
    };
    let device = args.get(1).filter(|a| !a.starts_with("--"));
    let spec = match (device, flag(args, "--topology")) {
        (Some(_), Some(_)) => {
            eprintln!("run takes either a device keyword or --topology, not both");
            std::process::exit(2);
        }
        (Some(dname), None) => device_by_name(dname).unwrap_or_else(|| usage()),
        (None, Some(path)) => load_topology_or_exit(&path),
        (None, None) => usage(),
    };
    let spec = apply_faults(spec, args);
    let platform = flag(args, "--platform")
        .and_then(|p| platform_by_name(&p))
        .unwrap_or_else(Platform::emr2s);
    let opts = RunOptions {
        mem_refs: flag_u64(args, "--refs", 30_000),
        ..Default::default()
    };
    // A single run has no cell grid, so `--progress` reports elapsed
    // wall clock only (no ETA — the n/a convention, not a guess).
    let _heartbeat = progress_requested(args).then(|| {
        let ms = melody::progress::heartbeat_ms().unwrap_or(500);
        spawn_heartbeat(None, Duration::from_millis(ms))
    });
    let local = melody::campaign::local_for_platform(&platform);
    let spec = apply_policy(spec, args, &local);
    if args.iter().any(|a| a == "--json") {
        run_json(args, &platform, &local, &spec, &w, &opts);
        return;
    }
    let pair = run_pair(&platform, &local, &spec, &w, &opts);
    println!(
        "{} on {} ({}): slowdown {:.1}%",
        w.name,
        spec.name(),
        platform.name,
        pair.slowdown * 100.0
    );
    for (label, v) in Breakdown::labels().iter().zip(pair.breakdown.values()) {
        println!("  {label:6} {:>6.1}%", v * 100.0);
    }
    println!(
        "  ipc {:.2} -> {:.2}; demand p99.9 {} -> {} ns",
        pair.local.ipc(),
        pair.target.ipc(),
        melody::report::percentile_cell(&pair.local.demand_lat_hist, 99.9),
        melody::report::percentile_cell(&pair.target.demand_lat_hist, 99.9)
    );
    print_ras(&pair.target.device_stats.ras);
    if pair.target.counters.machine_checks > 0 {
        println!("  machine checks: {}", pair.target.counters.machine_checks);
    }
}

/// `melody run ... --json`: runs the pair with tracing forced on (each
/// side captured privately, so events never mix) and emits the
/// `melody-run` insight document — whole-run breakdown, windowed
/// attribution timeline, anomaly windows, and the merged telemetry
/// export. `--out PATH` additionally writes the document to a file;
/// `--windows N` sets the timeline resolution.
fn run_json(
    args: &[String],
    platform: &Platform,
    local_spec: &DeviceSpec,
    target_spec: &DeviceSpec,
    w: &WorkloadSpec,
    opts: &RunOptions,
) {
    let cfg = melody_insight::InsightConfig {
        windows: flag_u64(args, "--windows", 24) as usize,
        ..Default::default()
    };
    let (local_run, _l_events, l_dropped, l_metrics) =
        melody::exec::traced(|| melody::run_workload(platform, local_spec, w, opts));
    let (target_run, t_events, t_dropped, t_metrics) =
        melody::exec::traced(|| melody::run_workload(platform, target_spec, w, opts));
    let mut metrics = l_metrics;
    metrics.merge(&t_metrics);
    let meta = melody_insight::RunMeta {
        workload: w.name.clone(),
        suite: w.suite.label().to_string(),
        platform: platform.name.clone(),
        local_device: local_spec.name(),
        target_device: target_spec.name(),
        seed: opts.seed,
        mem_refs: opts.mem_refs,
        faults: flag(args, "--faults").unwrap_or_default(),
        policy: flag(args, "--policy")
            .filter(|p| p != "static")
            .unwrap_or_default(),
    };
    let doc = melody_insight::build_run_doc(
        meta,
        &local_run,
        &target_run,
        &t_events,
        l_dropped + t_dropped,
        melody_telemetry::TelemetryExport::from_registry(&metrics),
        &cfg,
    );
    let json = melody::report::to_json(&doc);
    if let Some(path) = flag(args, "--out") {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!(
            "wrote {path}: {} windows, {} anomaly(ies)",
            doc.timeline.len(),
            doc.anomalies.len()
        );
    } else {
        println!("{json}");
    }
}

/// Reads a JSON document for `diff`/`report`, exiting 2 with a clear
/// message when the path is a directory, unreadable, or an empty file —
/// those used to fall through to a raw deserialize error.
fn read_json_text(path: &str) -> String {
    match std::fs::metadata(path) {
        Ok(m) if m.is_dir() => {
            eprintln!("{path}: is a directory, not a JSON document");
            std::process::exit(2);
        }
        Ok(_) => {}
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    }
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    if text.trim().is_empty() {
        eprintln!("{path}: empty file, expected a JSON document");
        std::process::exit(2);
    }
    text
}

/// `melody diff <a.json> <b.json>`: structural diff of two `--json`
/// documents under optional `--rel-tol` / `--abs-tol` tolerances.
/// Prints the human delta table (or the machine verdict with `--json`)
/// and exits 0 when identical/within tolerance, 1 on divergence, 2 on
/// usage or I/O errors — CI gates on the exit code.
fn cmd_diff(args: &[String]) {
    // The two documents are the positional (non-flag) arguments, in any
    // interleaving with the flags: `diff --json a b` works like
    // `diff a b --json`.
    let mut paths = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--rel-tol" | "--abs-tol" => i += 2,
            s if s.starts_with("--") => i += 1,
            _ => {
                paths.push(&args[i]);
                i += 1;
            }
        }
    }
    let [path_a, path_b] = paths[..] else { usage() };
    let read = |path: &String| -> serde::Value {
        let text = read_json_text(path);
        serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("{path}: not valid JSON: {e}");
            std::process::exit(2);
        })
    };
    let a = read(path_a);
    let b = read(path_b);
    let opts = melody_insight::DiffOptions {
        rel_tol: flag(args, "--rel-tol")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.0),
        abs_tol: flag(args, "--abs-tol")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.0),
    };
    let verdict = melody_insight::diff_values(&a, &b, &opts);
    if args.iter().any(|x| x == "--json") {
        println!("{}", melody::report::to_json(&verdict));
    } else {
        print!(
            "{} vs {}: {}",
            path_a,
            path_b,
            melody_insight::render_delta_table(&verdict)
        );
    }
    if !verdict.within_tolerance {
        std::process::exit(1);
    }
}

/// `melody report <run.json>`: renders a `melody-run` document into a
/// self-contained static HTML page (inline SVG charts, inline CSS, no
/// scripts or external assets) at `--out` (default `report.html`).
fn cmd_report(args: &[String]) {
    let Some(path) = args.first() else { usage() };
    let text = read_json_text(path);
    let doc: melody_insight::RunDoc = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("{path}: not a melody-run document: {e}");
        std::process::exit(2);
    });
    if doc.kind != melody_insight::doc::RUN_DOC_KIND {
        eprintln!(
            "{path}: kind `{}` is not `{}`",
            doc.kind,
            melody_insight::doc::RUN_DOC_KIND
        );
        std::process::exit(2);
    }
    let out_path = flag(args, "--out").unwrap_or_else(|| "report.html".to_string());
    let html = melody_insight::render_run_html(&doc);
    if let Err(e) = std::fs::write(&out_path, &html) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    println!(
        "{} -> {out_path}: {} on {}, {} window(s), {} anomaly(ies)",
        path,
        doc.meta.workload,
        doc.meta.target_device,
        doc.timeline.len(),
        doc.anomalies.len()
    );
}

fn cmd_cpmu(args: &[String]) {
    let Some(spec) = args.first().and_then(|n| device_by_name(n)) else {
        usage()
    };
    let accesses = flag_u64(args, "--accesses", 40_000);
    let mut dev = CpmuDevice::new(spec.build(1));
    let mut rng = melody_sim::SimRng::seed_from(0xC11);
    let mut t = 0;
    for _ in 0..accesses {
        let addr = rng.below(1 << 26) * 64;
        let a = dev.access(&melody_mem::MemRequest::new(
            addr,
            melody_mem::RequestKind::DemandRead,
            t,
        ));
        t = a.completion;
    }
    let r = dev.report();
    println!(
        "{}: total p50/p99.9 = {}/{} ns | p99.9 by component: queue {} dram {} fabric {} spike {} | dominant: {}",
        spec.name(),
        r.total.percentile(50.0),
        r.total.percentile(99.9),
        r.queue.percentile(99.9),
        r.dram.percentile(99.9),
        r.fabric.percentile(99.9),
        r.spike.percentile(99.9),
        r.dominant_tail_component()
    );
}

/// `melody campaign <spec.json>`: expands the spec's
/// platform × device × fault × workload grid, loads warm cells from the
/// content-addressed result cache (default `.melody-cache`, override
/// with `--cache DIR`, disable with `--no-cache`), dispatches only the
/// misses to the worker pool, and renders the campaign table (or the
/// JSON document with `--json`). `--shard i/N` runs the i-th of N
/// interleaved slices; `--journal PATH` + `--resume` checkpoint and
/// resume exactly like `melody degraded`. Output is byte-identical for
/// any cache, shard or `--jobs` mix.
fn cmd_campaign(args: &[String]) {
    use melody::journal::Journal;

    // The spec path is the first positional; values of valued flags
    // (`--shard 0/2`, `--journal j.log`, `--topology t.json`,
    // `--policy lru-hotness`, ...) are not positionals and must be
    // skipped.
    let valued_flags = [
        "--shard",
        "--journal",
        "--topology",
        "--policy",
        "--page-bytes",
        "--migrate-budget-gbps",
    ];
    let mut spec_path = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if valued_flags.contains(&a.as_str()) {
            it.next();
        } else if !a.starts_with("--") {
            spec_path = Some(a);
            break;
        }
    }
    let Some(spec_path) = spec_path else {
        eprintln!("campaign requires a spec file (see datasets/grid_quick.json)");
        std::process::exit(2);
    };
    let mut spec = CampaignSpec::load(spec_path).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    if let Some(tp) = flag(args, "--topology") {
        spec.topologies.push(load_topology_spec_or_exit(&tp));
    }
    // `--policy NAME` appends to the spec's tiering-policy axis (the
    // expander validates the name; an unknown one exits 2 listing the
    // valid spellings). Knob flags override the spec's values.
    if let Some(p) = flag(args, "--policy") {
        spec.policies.push(p);
    }
    if let Some(p) = flag(args, "--page-bytes").and_then(|v| v.parse().ok()) {
        spec.page_bytes = Some(p);
    }
    if let Some(b) = flag(args, "--migrate-budget-gbps").and_then(|v| v.parse().ok()) {
        spec.migrate_budget_gbps = Some(b);
    }
    let shard = match flag(args, "--shard") {
        Some(s) => Shard::parse(&s).unwrap_or_else(|| {
            eprintln!("bad --shard `{s}` (expected i/N with i < N)");
            std::process::exit(2);
        }),
        None => Shard::full(),
    };
    let resume = args.iter().any(|a| a == "--resume");
    let mut journal = match flag(args, "--journal") {
        Some(path) => {
            if !resume {
                // A fresh (non---resume) campaign starts from a clean
                // journal; stale entries would silently skip cells.
                let _ = std::fs::remove_file(&path);
            }
            Journal::open(&path).unwrap_or_else(|e| {
                eprintln!("cannot open journal {path}: {e}");
                std::process::exit(2);
            })
        }
        None => {
            if resume {
                eprintln!("--resume requires --journal PATH");
                std::process::exit(2);
            }
            Journal::in_memory()
        }
    };
    warn_torn_journal(&journal, resume);
    let mut policy = melody::exec::CellPolicy::default();
    let heartbeat = if progress_requested(args) {
        let sink = Arc::new(Progress::default());
        policy = policy.with_progress(Arc::clone(&sink));
        let ms = melody::progress::heartbeat_ms().unwrap_or(500);
        Some(spawn_heartbeat(Some(sink), Duration::from_millis(ms)))
    } else {
        None
    };
    let run = melody::cache::with_global(|cache| {
        run_campaign(&spec, shard, &mut journal, cache, &policy)
    })
    .unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    // Stop the heartbeat (printing its final line) before the stats
    // render so the stderr stream reads in order.
    drop(heartbeat);
    // Resolution provenance differs between warm/cold/resumed runs, so
    // it goes to stderr; stdout stays byte-comparable.
    eprintln!("{}", run.stats.render());
    let report = run.report;
    if args.iter().any(|a| a == "--json") {
        if melody_telemetry::metrics_on() {
            // Same document shape as `degraded --json --telemetry`: the
            // report plus the telemetry export as one JSON object.
            let c = melody_telemetry::collect();
            let export = telemetry_export_with_exec_counters(&c.metrics);
            println!(
                "{{\"report\":{},\"telemetry\":{}}}",
                melody::report::to_json(&report),
                serde_json::to_string(&export).expect("telemetry export serialize")
            );
            if !c.profile.is_empty() {
                eprint!("{}", c.profile.render());
            }
        } else {
            println!("{}", melody::report::to_json(&report));
        }
    } else {
        print!("{}", report.render());
    }
    if !report.errors.is_empty() {
        std::process::exit(1);
    }
}

/// Surfaces a journal's dropped torn tail as a counted warning on
/// `--resume` (a fresh run truncates the journal, so there is nothing
/// to warn about).
fn warn_torn_journal(journal: &melody::journal::Journal, resume: bool) {
    if resume && journal.torn_lines() > 0 {
        let path = journal
            .path()
            .map_or_else(|| "<memory>".to_string(), |p| p.display().to_string());
        eprintln!(
            "warning: dropped {} torn trailing record(s) from {path} (those cells will re-run)",
            journal.torn_lines()
        );
    }
}

/// The telemetry export with the process-global execution-robustness
/// counters folded in: retries, watchdog deadline hits and
/// cancellations are counted even for attempts whose in-capture
/// telemetry buffers were dropped on failure, so the export is the one
/// place `--json` consumers can read exact totals.
fn telemetry_export_with_exec_counters(
    metrics: &melody_telemetry::MetricsRegistry,
) -> melody_telemetry::TelemetryExport {
    let mut export = melody_telemetry::TelemetryExport::from_registry(metrics);
    let rs = melody::exec::retry_stats();
    export
        .counters
        .insert("exec.cell_retries_total".to_string(), rs.retries);
    export.counters.insert(
        "exec.cell_deadlines_total".to_string(),
        rs.deadline_exceeded,
    );
    export
        .counters
        .insert("exec.cells_cancelled_total".to_string(), rs.cancelled);
    export
}

fn cmd_degraded(args: &[String]) {
    use melody::experiments::degraded;
    use melody::journal::Journal;

    let scale = match flag(args, "--scale").as_deref() {
        None | Some("smoke") => Scale::Smoke,
        Some("quick") => Scale::Quick,
        Some("full") => Scale::Full,
        Some(other) => {
            eprintln!("unknown scale `{other}` (smoke|quick|full)");
            std::process::exit(2);
        }
    };
    let resume = args.iter().any(|a| a == "--resume");
    let mut journal = match flag(args, "--journal") {
        Some(path) => {
            if !resume {
                // A fresh (non---resume) sweep starts from a clean
                // journal; stale entries would silently skip cells.
                let _ = std::fs::remove_file(&path);
            }
            Journal::open(&path).unwrap_or_else(|e| {
                eprintln!("cannot open journal {path}: {e}");
                std::process::exit(2);
            })
        }
        None => {
            if resume {
                eprintln!("--resume requires --journal PATH");
                std::process::exit(2);
            }
            Journal::in_memory()
        }
    };
    warn_torn_journal(&journal, resume);
    let limit = flag(args, "--limit").and_then(|v| v.parse::<usize>().ok());
    let report = degraded::run_with(
        scale,
        &degraded::standard_cells(),
        &mut journal,
        limit,
        &melody::exec::CellPolicy::default(),
    );
    if args.iter().any(|a| a == "--json") {
        if melody_telemetry::metrics_on() {
            // Fold the telemetry export into the JSON document rather
            // than breaking it with a trailing table: full percentile
            // summaries (p50/p95/p99/p99.9/max, n) and gauge window
            // series, so `melody diff` and external tooling consume
            // them without re-parsing rendered text. The profile still
            // goes to stderr: wall-clock values are nondeterministic.
            let c = melody_telemetry::collect();
            let export = telemetry_export_with_exec_counters(&c.metrics);
            println!(
                "{{\"report\":{},\"telemetry\":{}}}",
                melody::report::to_json(&report),
                serde_json::to_string(&export).expect("telemetry export serialize")
            );
            if !c.profile.is_empty() {
                eprint!("{}", c.profile.render());
            }
        } else {
            println!("{}", melody::report::to_json(&report));
        }
    } else {
        print!("{}", report.render());
    }
    if !report.errors.is_empty() {
        std::process::exit(1);
    }
}

/// `melody tiering [--scale S] [--json]`: runs the per-policy online
/// migration comparison (every [`melody_mem::POLICIES`] entry on the
/// phased hot/cold workload over CXL-B) and renders the slowdown /
/// migration-traffic table, or the JSON document with `--json`.
fn cmd_tiering(args: &[String]) {
    use melody::experiments::tiering;

    let scale = match flag(args, "--scale").as_deref() {
        None | Some("smoke") => Scale::Smoke,
        Some("quick") => Scale::Quick,
        Some("full") => Scale::Full,
        Some(other) => {
            eprintln!("unknown scale `{other}` (smoke|quick|full)");
            std::process::exit(2);
        }
    };
    let data = tiering::run(scale);
    if args.iter().any(|a| a == "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&data).expect("tiering data serializes")
        );
    } else {
        print!("{}", data.render());
    }
}

/// `melody trace <device>`: runs a small deterministic population sweep
/// in trace mode and exports the collected events as Chrome
/// `trace_event` JSON (open in Perfetto or `chrome://tracing`).
///
/// The sweep goes through the parallel harness, so `--jobs` exercises
/// the worker pool — and the export is still byte-identical at any
/// worker count, which CI enforces with `cmp`.
fn cmd_trace(args: &[String]) {
    let Some(dname) = args.first() else { usage() };
    let Some(spec) = device_by_name(dname) else {
        usage()
    };
    let spec = apply_faults(spec, args);
    melody_telemetry::set_mode(melody_telemetry::Mode::Trace);
    let out_path = flag(args, "--out").unwrap_or_else(|| format!("trace_{dname}.json"));
    let n = flag_u64(args, "--workloads", 6) as usize;
    let workloads: Vec<_> = registry::all().into_iter().take(n).collect();
    let opts = RunOptions {
        mem_refs: flag_u64(args, "--refs", 4_000),
        ..Default::default()
    };
    let platform = Platform::emr2s();
    let local = presets::local_emr();
    let outcomes = run_population_par(&platform, &local, &spec, &workloads, &opts);
    let c = melody_telemetry::collect();
    let trace = c.chrome_trace();
    if let Err(e) = std::fs::write(&out_path, &trace) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    println!(
        "{}: traced {} cells, {} events ({} dropped) -> {}",
        spec.name(),
        outcomes.len(),
        c.events.len(),
        c.dropped,
        out_path
    );
    print!("{}", c.metrics.render());
    if !c.profile.is_empty() {
        eprint!("{}", c.profile.render());
    }
}

/// First non-flag argument, skipping the *values* of flags that take
/// one (so `status --server H:P job-000001` finds the job id, not the
/// address).
fn positional(args: &[String], value_flags: &[&str]) -> Option<String> {
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if value_flags.contains(&a.as_str()) {
            i += 2;
        } else if a.starts_with("--") {
            i += 1;
        } else {
            return Some(a.clone());
        }
    }
    None
}

/// Flags-with-values shared by the client subcommands, for
/// [`positional`].
const CLIENT_VALUE_FLAGS: &[&str] = &[
    "--server",
    "--client",
    "--deadline-ms",
    "--retries",
    "--poll-ms",
    "--timeout-s",
];

fn server_flag(args: &[String]) -> String {
    flag(args, "--server").unwrap_or_else(|| melody::server::DEFAULT_ADDR.to_string())
}

/// `melody serve`: runs the campaign service in the foreground until it
/// drains (SIGTERM, SIGINT or `POST /v1/drain`). See
/// `melody::server` for the API and robustness model. The global
/// `--cache DIR` flag selects the server's result cache (default
/// `.melody-cache`; `--no-cache` disables warm starts).
fn cmd_serve(args: &[String], no_cache: bool) {
    use melody::server::{signal, ServeConfig, Server};

    let mut cfg = ServeConfig::default();
    if let Some(h) = flag(args, "--addr") {
        cfg.host = h;
    }
    if let Some(p) = flag(args, "--port") {
        cfg.port = p.parse().unwrap_or_else(|_| usage());
    }
    if let Some(d) = flag(args, "--state-dir") {
        cfg.state_dir = d.into();
    }
    cfg.queue_depth = flag_u64(args, "--queue-depth", cfg.queue_depth as u64) as usize;
    cfg.admission_limit = flag_u64(args, "--admission-limit", cfg.admission_limit);
    if let Some(ms) = flag(args, "--deadline-ms") {
        cfg.default_deadline_ms = Some(ms.parse().unwrap_or_else(|_| usage()));
    }
    cfg.max_attempts = flag_u64(args, "--max-attempts", u64::from(cfg.max_attempts)) as u32;
    if let Some(fmt) = flag(args, "--log") {
        match melody::server::log::LogFormat::parse(&fmt) {
            Some(f) => melody::server::log::set_format(f),
            None => usage(),
        }
    }
    // The server owns a private cache handle: the process-global one is
    // held locked for a whole campaign, which would block health and
    // status queries while a job runs.
    cfg.cache_dir = if no_cache {
        None
    } else {
        melody::cache::with_global(|c| c.map(|c| c.root().to_path_buf()))
            .or_else(|| Some(".melody-cache".into()))
    };
    melody::cache::set_global(None);
    signal::install_drain_handler();
    let handle = Server::start(cfg).unwrap_or_else(|e| {
        eprintln!("cannot start server: {e}");
        std::process::exit(2);
    });
    // One parseable line so scripts can discover an ephemeral port.
    println!("melody-serve: listening on {}", handle.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    handle.join();
    eprintln!("melody-serve: drained cleanly");
}

/// `melody submit <spec.json>`: submits a campaign to a running server.
/// Prints the job id (or the full reply with `--json`); `--retries N`
/// retries `429 Busy` rejections with capped exponential backoff;
/// `--wait` polls until the job finishes and prints its result — the
/// exact bytes `melody campaign --json` would emit. Exit codes: 0
/// accepted/succeeded, 1 the job itself failed or was interrupted, 2
/// client/usage errors (unreachable server, bad spec, ...).
fn cmd_submit(args: &[String]) {
    use melody::server::client::{self, RetrySchedule};

    let Some(spec_path) = positional(args, CLIENT_VALUE_FLAGS) else {
        eprintln!("submit requires a spec file (see datasets/grid_quick.json)");
        std::process::exit(2);
    };
    let spec_text = std::fs::read_to_string(&spec_path).unwrap_or_else(|e| {
        eprintln!("cannot read {spec_path}: {e}");
        std::process::exit(2);
    });
    // Validate locally first: a bad spec should fail with a clear
    // message even when the server is unreachable.
    if let Err(e) = serde_json::from_str::<CampaignSpec>(&spec_text) {
        eprintln!("{spec_path}: not a campaign spec: {e:?}");
        std::process::exit(2);
    }
    let server = server_flag(args);
    let client_name = flag(args, "--client");
    let deadline_ms = flag(args, "--deadline-ms").map(|v| v.parse().unwrap_or_else(|_| usage()));
    let schedule = RetrySchedule {
        max_retries: flag_u64(args, "--retries", 0) as u32,
        ..Default::default()
    };
    match client::submit_with_retry(
        &server,
        &spec_text,
        client_name.as_deref(),
        deadline_ms,
        &schedule,
    ) {
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
        Ok((reply, retries)) => {
            if retries > 0 {
                eprintln!("submitted after {retries} backpressure retry(ies)");
            }
            eprintln!(
                "accepted {}: {} cells, cost {}, {} job(s) ahead",
                reply.job_id, reply.total_cells, reply.cost, reply.position
            );
            if args.iter().any(|a| a == "--wait") {
                wait_and_print_result(&server, &reply.job_id, args);
            } else if args.iter().any(|a| a == "--json") {
                println!(
                    "{}",
                    serde_json::to_string(&reply).expect("reply serializes")
                );
            } else {
                println!("{}", reply.job_id);
            }
        }
    }
}

/// Waits for a job and streams its result to stdout. Exits 1 when the
/// job failed or was interrupted, 2 on client errors. The poll sleep
/// starts at `--poll-ms` and backs off (doubling, capped at 5 s) while
/// the job's state is unchanged, snapping back when it moves.
fn wait_and_print_result(server: &str, id: &str, args: &[String]) {
    use melody::server::api::JobStatus;
    use melody::server::client::{self, RetrySchedule};

    let poll = Duration::from_millis(flag_u64(args, "--poll-ms", 200));
    let timeout = Duration::from_secs(flag_u64(args, "--timeout-s", 600));
    let schedule = RetrySchedule {
        max_retries: 0,
        base: poll,
        cap: poll.max(Duration::from_secs(5)),
    };
    let view = client::wait_with_backoff(server, id, &schedule, timeout).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    if view.status == JobStatus::Interrupted {
        eprintln!("job {id} was interrupted by a drain; restart the server to resume it");
        std::process::exit(1);
    }
    match client::job_result(server, id) {
        Ok(bytes) => {
            use std::io::Write as _;
            let mut out = std::io::stdout();
            let _ = out.write_all(&bytes);
            let _ = out.flush();
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
    if view.status == JobStatus::Failed {
        eprintln!(
            "job {id} failed: {}",
            view.error
                .unwrap_or_else(|| "cell errors in report".to_string())
        );
        std::process::exit(1);
    }
}

/// One human status line for a job, shared by `status` and `--watch`:
/// the lifecycle line, plus live progress and per-job result-cache
/// accounting when the server reports them.
fn status_line(view: &melody::server::api::JobView) -> String {
    let mut line = format!(
        "{} [{}] {}: {} — {}/{} cells journaled",
        view.id,
        view.client,
        view.campaign,
        view.status.label(),
        view.cells_journaled,
        view.total_cells
    );
    if let Some(p) = &view.progress {
        line.push_str(&format!(" — {}", p.render()));
    }
    if let Some(stats) = &view.stats {
        line.push_str(&format!(" ({})", stats.render()));
    }
    if let Some(cache) = &view.cache {
        line.push_str(&format!(" ({})", cache.render()));
    }
    if let Some(err) = &view.error {
        line.push_str(&format!(" — {err}"));
    }
    line
}

/// `melody status --watch`: live-refreshing job view. With a job id it
/// follows that job; without one it follows every job the server
/// knows. Returns once everything being watched has finished (or was
/// interrupted). On a terminal the block redraws in place; on a pipe
/// each changed line prints once, so captured logs read as a monotonic
/// progress history.
fn watch_status(server: &str, id: Option<&str>, poll: Duration) {
    use melody::server::api::JobStatus;
    use melody::server::client;
    use std::io::{IsTerminal as _, Write as _};

    let tty = std::io::stdout().is_terminal();
    let mut prev_lines = 0usize;
    let mut last_block = String::new();
    loop {
        let views = match id {
            Some(id) => client::job_status(server, id).map(|v| vec![v]),
            None => client::list_jobs(server),
        }
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        let mut lines: Vec<String> = views.iter().map(status_line).collect();
        if lines.is_empty() {
            lines.push("no jobs".to_string());
        }
        let block = lines.join("\n");
        let mut out = std::io::stdout();
        if tty {
            if prev_lines > 0 {
                // Cursor up over the previous block; each line is
                // cleared before being rewritten.
                let _ = write!(out, "\x1b[{prev_lines}A");
            }
            for line in &lines {
                let _ = writeln!(out, "\x1b[2K{line}");
            }
            prev_lines = lines.len();
        } else if block != last_block {
            for line in &lines {
                let _ = writeln!(out, "{line}");
            }
        }
        let _ = out.flush();
        last_block = block;
        let all_finished = views
            .iter()
            .all(|v| v.status.is_finished() || v.status == JobStatus::Interrupted);
        if all_finished {
            return;
        }
        std::thread::sleep(poll);
    }
}

/// `melody status [job-id]`: without an id, prints the server health
/// overview; with one, that job's status (`--json` for the machine
/// form, `--result` for the finished report bytes, `--wait` to poll
/// until it finishes, `--watch` for a live-refreshing view).
/// Unreachable servers, malformed responses and unknown job ids exit 2
/// with a clear message.
fn cmd_status(args: &[String]) {
    use melody::server::client;

    let server = server_flag(args);
    let id = positional(args, CLIENT_VALUE_FLAGS);
    if args.iter().any(|a| a == "--watch") {
        let poll = Duration::from_millis(flag_u64(args, "--poll-ms", 500));
        watch_status(&server, id.as_deref(), poll);
        return;
    }
    let Some(id) = id else {
        let health = client::health(&server).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        if args.iter().any(|a| a == "--json") {
            println!(
                "{}",
                serde_json::to_string(&health).expect("health serializes")
            );
        } else {
            println!(
                "server {server}: {} ({} queued, {} running, {} done, {} failed, {} interrupted)",
                health.status,
                health.queued,
                health.running,
                health.done,
                health.failed,
                health.interrupted
            );
            println!(
                "  submissions: {} accepted, {} busy-rejected, {} admission-rejected",
                health.accepted, health.rejected_busy, health.rejected_admission
            );
            println!("  uptime: {}s", health.uptime_ms / 1_000);
            if let Some(p) = &health.progress {
                println!("  running job: {}", p.render());
            }
            if let Some(cache) = health.cache {
                println!("  {}", cache.render());
            }
        }
        return;
    };
    if args.iter().any(|a| a == "--wait") {
        wait_and_print_result(&server, &id, args);
        return;
    }
    let view = client::job_status(&server, &id).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    if args.iter().any(|a| a == "--result") {
        match client::job_result(&server, &id) {
            Ok(bytes) => {
                use std::io::Write as _;
                let mut out = std::io::stdout();
                let _ = out.write_all(&bytes);
                let _ = out.flush();
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
        return;
    }
    if args.iter().any(|a| a == "--json") {
        println!("{}", serde_json::to_string(&view).expect("view serializes"));
    } else {
        println!("{}", status_line(&view));
    }
}

/// `melody drain`: asks the server to finish gracefully (stop accepting
/// submissions, cancel unclaimed cells, checkpoint, exit) — the same
/// path a SIGTERM takes.
fn cmd_drain(args: &[String]) {
    use melody::server::client;

    let server = server_flag(args);
    match client::drain(&server) {
        Ok(()) => println!("drain requested"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}
