//! # Melody: systematic CXL memory characterization and analysis
//!
//! A full-system reproduction of *"Systematic CXL Memory Characterization
//! and Performance Analysis at Scale"* (Liu et al., ASPLOS '25) as a Rust
//! library. The paper's testbed — 4 real CXL memory expanders, 5 Intel
//! server platforms, 265 workloads, Intel performance counters — is
//! replaced by a deterministic discrete-event simulation substrate (see
//! `DESIGN.md` for the substitution argument); everything above the
//! hardware line is the paper's methodology, faithfully implemented:
//!
//! - device characterization probes and the MIO microbenchmark
//!   ([`melody_mio`]), MLC-style loaded-latency sweeps
//!   ([`melody_workloads::mlc`]);
//! - the 265-workload population ([`melody_workloads::registry`]);
//! - the Spa stall-based root-cause analysis ([`melody_spa`]);
//! - per-figure/table experiment harnesses ([`experiments`]).
//!
//! ## Quickstart
//!
//! ```
//! use melody::prelude::*;
//!
//! // Characterize CXL-B: idle latency and tail behaviour.
//! let mio = melody_mio::run(
//!     &presets::cxl_b(),
//!     &melody_mio::MioConfig { accesses: 5_000, ..Default::default() },
//! );
//! assert!(mio.latency.percentile(50.0) > 200);
//!
//! // Run one workload on local DRAM vs CXL-B and break the slowdown down.
//! let wl = registry::by_name("605.mcf").expect("known workload");
//! let opts = RunOptions { mem_refs: 5_000, ..Default::default() };
//! let pair = run_pair(
//!     &Platform::emr2s(), &presets::local_emr(), &presets::cxl_b(), &wl, &opts,
//! );
//! assert!(pair.slowdown > 0.0, "mcf slows down on CXL-B");
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod campaign;
pub mod exec;
pub mod experiments;
pub mod journal;
pub mod progress;
pub mod report;
mod runner;
pub mod server;
mod testbed;

pub use runner::{
    run_pair, run_population, run_population_par, run_population_resilient, run_workload,
    PairOutcome, RunOptions,
};
pub use testbed::{emr_cxl_setups, full_latency_spectrum, spr_cxl_setups, Setup};

/// Convenient re-exports of the most used items across the workspace.
pub mod prelude {
    pub use crate::cache::{CacheStats, ResultCache};
    pub use crate::campaign::{
        device_by_name, platform_by_name, run_campaign, CampaignReport, CampaignRun,
        CampaignRunStats, CampaignSpec, Shard,
    };
    pub use crate::exec::{CellError, CellErrorKind, CellPolicy, RetryStats};
    pub use crate::experiments::Scale;
    pub use crate::journal::Journal;
    pub use crate::progress::{Progress, ProgressSnapshot};
    pub use crate::report::{Series, TableData};
    pub use crate::runner::{
        run_pair, run_population, run_population_par, run_population_resilient, run_workload,
        PairOutcome, RunOptions,
    };
    pub use crate::server::{ServeConfig, Server, ServerHandle};
    pub use crate::testbed::{emr_cxl_setups, full_latency_spectrum, Setup};
    pub use melody_cpu::{Core, CoreConfig, CounterSet, Platform, RunResult, Slot};
    pub use melody_mem::{presets, probe, DeviceSpec, Fabric, MemoryDevice, TopologySpec};
    pub use melody_spa::{breakdown, estimates, Breakdown};
    pub use melody_stats::{Cdf, LatencyHistogram};
    pub use melody_workloads::{registry, SlotStream, WorkloadSpec};
}
