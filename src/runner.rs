//! Workload execution: single runs, local-vs-target pairs, and
//! populations.

use melody_cpu::{Core, CoreConfig, Fidelity, Platform, RunResult, SamplingParams};
use melody_mem::{DeviceSpec, GuideWindow, PolicyKind};
use melody_spa::{breakdown, Breakdown, BreakdownStream};
use melody_workloads::{SlotStream, Suite, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// Options for one workload run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunOptions {
    /// Memory references to simulate per run (instruction count follows
    /// from the workload's arithmetic intensity).
    pub mem_refs: u64,
    /// Seed for the workload's address stream and the device RNG.
    pub seed: u64,
    /// Periodic counter sampling interval (simulated ns).
    pub sample_interval_ns: Option<u64>,
    /// Hardware prefetchers on/off.
    pub prefetchers: bool,
    /// Simulation fidelity tier (see [`Fidelity`]). Part of result
    /// identity: campaign fingerprints include it, so a sampled or fast
    /// result is never served from cache for a detailed request.
    #[serde(default)]
    pub fidelity: Fidelity,
    /// Sampling schedule for the [`Fidelity::Sampled`] tier; ignored by
    /// the other tiers.
    #[serde(default)]
    pub sampling: SamplingParams,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            mem_refs: 60_000,
            seed: 42,
            sample_interval_ns: None,
            prefetchers: true,
            fidelity: crate::exec::fidelity(),
            sampling: crate::exec::sampling(),
        }
    }
}

fn workload_seed(base: u64, name: &str) -> u64 {
    let mut h: u64 = base ^ 0x6d656c6f6479; // "melody"
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Synthesizes the guide schedule for a top-level
/// [`DeviceSpec::Tiered`] spec running the `spa-guided` policy with an
/// empty guide: a sampled profiling pair (the fast tier alone vs the
/// plain slow tier) is folded through [`BreakdownStream`], and each
/// complete window becomes a [`GuideWindow`] whose `mem_score` is the
/// window's DRAM share of the differential stall breakdown, timestamped
/// from the slow run's sample timeline. Returns `None` when the spec
/// needs no guide (not tiered, not spa-guided, or a guide is already
/// present), so every other policy's spec reaches the simulator
/// untouched. The guide never enters cell fingerprints — identity is
/// the un-guided spec, and the synthesis is deterministic from it.
fn synthesize_spa_guide(
    platform: &Platform,
    device: &DeviceSpec,
    workload: &WorkloadSpec,
    opts: &RunOptions,
) -> Option<DeviceSpec> {
    let DeviceSpec::Tiered {
        tiering,
        fast,
        slow,
    } = device
    else {
        return None;
    };
    if tiering.policy != PolicyKind::SpaGuided || !tiering.guide.is_empty() {
        return None;
    }
    let popts = RunOptions {
        sample_interval_ns: Some(2_000),
        ..opts.clone()
    };
    let fast_run = run_workload(platform, fast, workload, &popts);
    let slow_run = run_workload(platform, slow, workload, &popts);
    let period = (fast_run.counters.instructions / 24).max(1);
    let mut bs = BreakdownStream::new(period);
    for s in &fast_run.samples {
        bs.push_local(s);
    }
    for s in &slow_run.samples {
        bs.push_target(s);
    }
    let mut guide = Vec::new();
    for w in bs.poll() {
        let boundary = w.index as u64 * period;
        let start_ns = slow_run
            .samples
            .iter()
            .find(|s| s.counters.instructions >= boundary)
            .map(|s| s.time_ns)
            .unwrap_or(0);
        let total = w.breakdown.total.max(1e-9);
        guide.push(GuideWindow {
            start_ps: start_ns * 1_000,
            mem_score: (w.breakdown.dram.max(0.0) / total).clamp(0.0, 1.0),
        });
    }
    if guide.is_empty() {
        return None;
    }
    let mut tc = tiering.clone();
    tc.guide = guide;
    Some(DeviceSpec::Tiered {
        tiering: tc,
        fast: fast.clone(),
        slow: slow.clone(),
    })
}

/// Runs one workload on one device.
pub fn run_workload(
    platform: &Platform,
    device: &DeviceSpec,
    workload: &WorkloadSpec,
    opts: &RunOptions,
) -> RunResult {
    let scaled = platform.smp_scaled(workload.threads);
    // The fast tier is a closed-form interval model: no core, no warming,
    // no event loop (see [`melody_spa::run_interval`]).
    if opts.fidelity == Fidelity::Fast {
        return melody_spa::run_interval(
            &scaled,
            &device.analytic_profile(),
            workload,
            opts.mem_refs,
            opts.prefetchers,
        );
    }
    // The spa-guided policy consumes a profiling-derived guide schedule;
    // synthesize it here when the spec carries none.
    let guided;
    let device = match synthesize_spa_guide(platform, device, workload, opts) {
        Some(g) => {
            guided = g;
            &guided
        }
        None => device,
    };
    let ipc_peak = scaled.ipc_peak;
    let mut cfg = CoreConfig::new(scaled);
    cfg.prefetchers = opts.prefetchers;
    cfg.sample_interval_ns = opts.sample_interval_ns;
    cfg.frontend_bound = workload.frontend_bound;
    cfg.ilp = (workload.ilp * workload.threads as f64).min(ipc_peak);
    cfg.serialize_frac = workload.serialize_frac;
    let seed = workload_seed(opts.seed, &workload.name);
    let mut core = Core::new(cfg, device.build(seed));
    // Functional warming removes cold-start bias (see [`Core::warm`]).
    // The warmed ranges approximate the steady-state cache contents:
    // phases share one address space rooted at 0, so the *smallest*
    // phase footprint (and any skewed hot region) is warmed at the base,
    // and for overflowing phases the *tail* of the working set, so that
    // streams and uniform-random traffic keep their steady-state miss
    // ratios. The largest set is warmed first so the base region wins
    // cache residency on overlap.
    {
        let cap = core.l3_capacity_bytes();
        let mut phases: Vec<&melody_workloads::Phase> = workload.phases.iter().collect();
        phases.sort_by_key(|p| std::cmp::Reverse(p.working_set));
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for p in phases {
            let ws = p.working_set;
            let range = match p.pattern {
                melody_workloads::Pattern::Skewed { hot_bytes, .. } if ws > cap => {
                    (0, hot_bytes.min(cap))
                }
                _ if ws <= cap => (0, ws),
                _ => (ws - cap, ws),
            };
            if !ranges.contains(&range) {
                ranges.push(range);
            }
        }
        for (start, end) in ranges {
            core.warm(start, end);
        }
    }
    // Same stream seed regardless of device: local and target runs
    // execute the identical instruction sequence.
    let stream = SlotStream::new(workload, opts.seed, opts.mem_refs);
    match opts.fidelity {
        Fidelity::Detailed => core.run(stream),
        Fidelity::Sampled => core.run_sampled(stream, opts.sampling),
        Fidelity::Fast => unreachable!("fast tier returns above"),
    }
}

/// Outcome of running one workload on a local baseline and a target
/// device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PairOutcome {
    /// Workload name.
    pub workload: String,
    /// Workload suite.
    pub suite: Suite,
    /// Measured slowdown `c_target/c_local − 1` (fraction).
    pub slowdown: f64,
    /// Spa breakdown of the slowdown.
    pub breakdown: Breakdown,
    /// Baseline run.
    pub local: RunResult,
    /// Target run.
    pub target: RunResult,
}

/// Runs a workload against a (local, target) device pair.
pub fn run_pair(
    platform: &Platform,
    local_spec: &DeviceSpec,
    target_spec: &DeviceSpec,
    workload: &WorkloadSpec,
    opts: &RunOptions,
) -> PairOutcome {
    let local = {
        let _span = melody_telemetry::span("run_pair.local");
        run_workload(platform, local_spec, workload, opts)
    };
    let target = {
        let _span = melody_telemetry::span("run_pair.target");
        run_workload(platform, target_spec, workload, opts)
    };
    let slowdown = target.slowdown_vs(&local);
    let breakdown = breakdown(&local.counters, &target.counters);
    PairOutcome {
        workload: workload.name.clone(),
        suite: workload.suite,
        slowdown,
        breakdown,
        local,
        target,
    }
}

/// Runs a workload population against one device pair, in registry order.
pub fn run_population(
    platform: &Platform,
    local_spec: &DeviceSpec,
    target_spec: &DeviceSpec,
    workloads: &[WorkloadSpec],
    opts: &RunOptions,
) -> Vec<PairOutcome> {
    workloads
        .iter()
        .map(|w| run_pair(platform, local_spec, target_spec, w, opts))
        .collect()
}

/// [`run_population`] fanned out over the configured worker pool
/// ([`crate::exec::jobs`]).
///
/// Each (workload, device-pair) cell derives its RNG seed from the cell
/// identity alone (`workload_seed`), and cells share no mutable state,
/// so the result is byte-identical to [`run_population`] — same values,
/// same order — for any worker count. When a process-wide result cache
/// is installed ([`crate::cache::set_global`]), previously simulated
/// cells load from it instead of re-running (see
/// [`crate::campaign::cached_map`]); without one this is a plain
/// parallel map.
pub fn run_population_par(
    platform: &Platform,
    local_spec: &DeviceSpec,
    target_spec: &DeviceSpec,
    workloads: &[WorkloadSpec],
    opts: &RunOptions,
) -> Vec<PairOutcome> {
    let _span = melody_telemetry::span("population");
    crate::campaign::cached_map(
        "pair",
        workloads,
        |w| crate::campaign::pair_config_json(platform, local_spec, target_spec, w, opts),
        |w| run_pair(platform, local_spec, target_spec, w, opts),
    )
}

/// [`run_population_par`] with per-cell panic isolation: a workload that
/// panics (bad spec, invalid device config) becomes a structured
/// [`crate::exec::CellError`] instead of killing the sweep, and every
/// other workload still completes. Successful outcomes keep workload
/// order; errors carry the failed workload's name as the cell label.
pub fn run_population_resilient(
    platform: &Platform,
    local_spec: &DeviceSpec,
    target_spec: &DeviceSpec,
    workloads: &[WorkloadSpec],
    opts: &RunOptions,
    policy: &crate::exec::CellPolicy,
) -> (Vec<PairOutcome>, Vec<crate::exec::CellError>) {
    let results = crate::exec::run_cells(
        workloads,
        policy,
        |_, w| w.name.clone(),
        |w| run_pair(platform, local_spec, target_spec, w, opts),
    );
    let mut outcomes = Vec::new();
    let mut errors = Vec::new();
    for r in results {
        match r {
            Ok(o) => outcomes.push(o),
            Err(e) => errors.push(e),
        }
    }
    (outcomes, errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use melody_mem::presets;
    use melody_workloads::registry;

    fn opts() -> RunOptions {
        RunOptions {
            mem_refs: 8_000,
            ..Default::default()
        }
    }

    #[test]
    fn pair_outcome_consistent() {
        let w = registry::by_name("605.mcf").expect("mcf");
        let p = run_pair(
            &Platform::emr2s(),
            &presets::local_emr(),
            &presets::cxl_b(),
            &w,
            &opts(),
        );
        assert!(
            p.slowdown > 0.2,
            "mcf on CXL-B should slow down: {}",
            p.slowdown
        );
        // Breakdown total equals measured slowdown by construction.
        assert!((p.breakdown.total - p.slowdown).abs() < 1e-9);
        // Identical instruction streams.
        assert_eq!(
            p.local.counters.instructions,
            p.target.counters.instructions
        );
    }

    #[test]
    fn compute_bound_workload_tolerates_cxl() {
        let w = registry::by_name("541.leela").expect("leela");
        let p = run_pair(
            &Platform::emr2s(),
            &presets::local_emr(),
            &presets::cxl_c(),
            &w,
            &opts(),
        );
        assert!(
            p.slowdown < 0.15,
            "compute-bound leela should tolerate even CXL-C: {}",
            p.slowdown
        );
    }

    #[test]
    fn determinism_across_invocations() {
        let w = registry::by_name("bfs-web").expect("bfs-web");
        let a = run_pair(
            &Platform::emr2s(),
            &presets::local_emr(),
            &presets::cxl_a(),
            &w,
            &opts(),
        );
        let b = run_pair(
            &Platform::emr2s(),
            &presets::local_emr(),
            &presets::cxl_a(),
            &w,
            &opts(),
        );
        assert_eq!(a.local.counters, b.local.counters);
        assert_eq!(a.target.counters, b.target.counters);
    }

    #[test]
    fn population_preserves_order() {
        let ws: Vec<_> = registry::all().into_iter().take(3).collect();
        let out = run_population(
            &Platform::emr2s(),
            &presets::local_emr(),
            &presets::numa_emr(),
            &ws,
            &opts(),
        );
        assert_eq!(out.len(), 3);
        for (w, o) in ws.iter().zip(&out) {
            assert_eq!(w.name, o.workload);
        }
    }
}
