//! Workload execution: single runs, local-vs-target pairs, and
//! populations.

use melody_cpu::{Core, CoreConfig, Fidelity, Platform, RunResult, SamplingParams};
use melody_mem::DeviceSpec;
use melody_spa::{breakdown, Breakdown};
use melody_workloads::{SlotStream, Suite, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// Options for one workload run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunOptions {
    /// Memory references to simulate per run (instruction count follows
    /// from the workload's arithmetic intensity).
    pub mem_refs: u64,
    /// Seed for the workload's address stream and the device RNG.
    pub seed: u64,
    /// Periodic counter sampling interval (simulated ns).
    pub sample_interval_ns: Option<u64>,
    /// Hardware prefetchers on/off.
    pub prefetchers: bool,
    /// Simulation fidelity tier (see [`Fidelity`]). Part of result
    /// identity: campaign fingerprints include it, so a sampled or fast
    /// result is never served from cache for a detailed request.
    #[serde(default)]
    pub fidelity: Fidelity,
    /// Sampling schedule for the [`Fidelity::Sampled`] tier; ignored by
    /// the other tiers.
    #[serde(default)]
    pub sampling: SamplingParams,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            mem_refs: 60_000,
            seed: 42,
            sample_interval_ns: None,
            prefetchers: true,
            fidelity: crate::exec::fidelity(),
            sampling: crate::exec::sampling(),
        }
    }
}

fn workload_seed(base: u64, name: &str) -> u64 {
    let mut h: u64 = base ^ 0x6d656c6f6479; // "melody"
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Runs one workload on one device.
pub fn run_workload(
    platform: &Platform,
    device: &DeviceSpec,
    workload: &WorkloadSpec,
    opts: &RunOptions,
) -> RunResult {
    let scaled = platform.smp_scaled(workload.threads);
    // The fast tier is a closed-form interval model: no core, no warming,
    // no event loop (see [`melody_spa::run_interval`]).
    if opts.fidelity == Fidelity::Fast {
        return melody_spa::run_interval(
            &scaled,
            &device.analytic_profile(),
            workload,
            opts.mem_refs,
            opts.prefetchers,
        );
    }
    let ipc_peak = scaled.ipc_peak;
    let mut cfg = CoreConfig::new(scaled);
    cfg.prefetchers = opts.prefetchers;
    cfg.sample_interval_ns = opts.sample_interval_ns;
    cfg.frontend_bound = workload.frontend_bound;
    cfg.ilp = (workload.ilp * workload.threads as f64).min(ipc_peak);
    cfg.serialize_frac = workload.serialize_frac;
    let seed = workload_seed(opts.seed, &workload.name);
    let mut core = Core::new(cfg, device.build(seed));
    // Functional warming removes cold-start bias (see [`Core::warm`]).
    // The warmed ranges approximate the steady-state cache contents:
    // phases share one address space rooted at 0, so the *smallest*
    // phase footprint (and any skewed hot region) is warmed at the base,
    // and for overflowing phases the *tail* of the working set, so that
    // streams and uniform-random traffic keep their steady-state miss
    // ratios. The largest set is warmed first so the base region wins
    // cache residency on overlap.
    {
        let cap = core.l3_capacity_bytes();
        let mut phases: Vec<&melody_workloads::Phase> = workload.phases.iter().collect();
        phases.sort_by_key(|p| std::cmp::Reverse(p.working_set));
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for p in phases {
            let ws = p.working_set;
            let range = match p.pattern {
                melody_workloads::Pattern::Skewed { hot_bytes, .. } if ws > cap => {
                    (0, hot_bytes.min(cap))
                }
                _ if ws <= cap => (0, ws),
                _ => (ws - cap, ws),
            };
            if !ranges.contains(&range) {
                ranges.push(range);
            }
        }
        for (start, end) in ranges {
            core.warm(start, end);
        }
    }
    // Same stream seed regardless of device: local and target runs
    // execute the identical instruction sequence.
    let stream = SlotStream::new(workload, opts.seed, opts.mem_refs);
    match opts.fidelity {
        Fidelity::Detailed => core.run(stream),
        Fidelity::Sampled => core.run_sampled(stream, opts.sampling),
        Fidelity::Fast => unreachable!("fast tier returns above"),
    }
}

/// Outcome of running one workload on a local baseline and a target
/// device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PairOutcome {
    /// Workload name.
    pub workload: String,
    /// Workload suite.
    pub suite: Suite,
    /// Measured slowdown `c_target/c_local − 1` (fraction).
    pub slowdown: f64,
    /// Spa breakdown of the slowdown.
    pub breakdown: Breakdown,
    /// Baseline run.
    pub local: RunResult,
    /// Target run.
    pub target: RunResult,
}

/// Runs a workload against a (local, target) device pair.
pub fn run_pair(
    platform: &Platform,
    local_spec: &DeviceSpec,
    target_spec: &DeviceSpec,
    workload: &WorkloadSpec,
    opts: &RunOptions,
) -> PairOutcome {
    let local = {
        let _span = melody_telemetry::span("run_pair.local");
        run_workload(platform, local_spec, workload, opts)
    };
    let target = {
        let _span = melody_telemetry::span("run_pair.target");
        run_workload(platform, target_spec, workload, opts)
    };
    let slowdown = target.slowdown_vs(&local);
    let breakdown = breakdown(&local.counters, &target.counters);
    PairOutcome {
        workload: workload.name.clone(),
        suite: workload.suite,
        slowdown,
        breakdown,
        local,
        target,
    }
}

/// Runs a workload population against one device pair, in registry order.
pub fn run_population(
    platform: &Platform,
    local_spec: &DeviceSpec,
    target_spec: &DeviceSpec,
    workloads: &[WorkloadSpec],
    opts: &RunOptions,
) -> Vec<PairOutcome> {
    workloads
        .iter()
        .map(|w| run_pair(platform, local_spec, target_spec, w, opts))
        .collect()
}

/// [`run_population`] fanned out over the configured worker pool
/// ([`crate::exec::jobs`]).
///
/// Each (workload, device-pair) cell derives its RNG seed from the cell
/// identity alone (`workload_seed`), and cells share no mutable state,
/// so the result is byte-identical to [`run_population`] — same values,
/// same order — for any worker count. When a process-wide result cache
/// is installed ([`crate::cache::set_global`]), previously simulated
/// cells load from it instead of re-running (see
/// [`crate::campaign::cached_map`]); without one this is a plain
/// parallel map.
pub fn run_population_par(
    platform: &Platform,
    local_spec: &DeviceSpec,
    target_spec: &DeviceSpec,
    workloads: &[WorkloadSpec],
    opts: &RunOptions,
) -> Vec<PairOutcome> {
    let _span = melody_telemetry::span("population");
    crate::campaign::cached_map(
        "pair",
        workloads,
        |w| crate::campaign::pair_config_json(platform, local_spec, target_spec, w, opts),
        |w| run_pair(platform, local_spec, target_spec, w, opts),
    )
}

/// [`run_population_par`] with per-cell panic isolation: a workload that
/// panics (bad spec, invalid device config) becomes a structured
/// [`crate::exec::CellError`] instead of killing the sweep, and every
/// other workload still completes. Successful outcomes keep workload
/// order; errors carry the failed workload's name as the cell label.
pub fn run_population_resilient(
    platform: &Platform,
    local_spec: &DeviceSpec,
    target_spec: &DeviceSpec,
    workloads: &[WorkloadSpec],
    opts: &RunOptions,
    policy: &crate::exec::CellPolicy,
) -> (Vec<PairOutcome>, Vec<crate::exec::CellError>) {
    let results = crate::exec::run_cells(
        workloads,
        policy,
        |_, w| w.name.clone(),
        |w| run_pair(platform, local_spec, target_spec, w, opts),
    );
    let mut outcomes = Vec::new();
    let mut errors = Vec::new();
    for r in results {
        match r {
            Ok(o) => outcomes.push(o),
            Err(e) => errors.push(e),
        }
    }
    (outcomes, errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use melody_mem::presets;
    use melody_workloads::registry;

    fn opts() -> RunOptions {
        RunOptions {
            mem_refs: 8_000,
            ..Default::default()
        }
    }

    #[test]
    fn pair_outcome_consistent() {
        let w = registry::by_name("605.mcf").expect("mcf");
        let p = run_pair(
            &Platform::emr2s(),
            &presets::local_emr(),
            &presets::cxl_b(),
            &w,
            &opts(),
        );
        assert!(
            p.slowdown > 0.2,
            "mcf on CXL-B should slow down: {}",
            p.slowdown
        );
        // Breakdown total equals measured slowdown by construction.
        assert!((p.breakdown.total - p.slowdown).abs() < 1e-9);
        // Identical instruction streams.
        assert_eq!(
            p.local.counters.instructions,
            p.target.counters.instructions
        );
    }

    #[test]
    fn compute_bound_workload_tolerates_cxl() {
        let w = registry::by_name("541.leela").expect("leela");
        let p = run_pair(
            &Platform::emr2s(),
            &presets::local_emr(),
            &presets::cxl_c(),
            &w,
            &opts(),
        );
        assert!(
            p.slowdown < 0.15,
            "compute-bound leela should tolerate even CXL-C: {}",
            p.slowdown
        );
    }

    #[test]
    fn determinism_across_invocations() {
        let w = registry::by_name("bfs-web").expect("bfs-web");
        let a = run_pair(
            &Platform::emr2s(),
            &presets::local_emr(),
            &presets::cxl_a(),
            &w,
            &opts(),
        );
        let b = run_pair(
            &Platform::emr2s(),
            &presets::local_emr(),
            &presets::cxl_a(),
            &w,
            &opts(),
        );
        assert_eq!(a.local.counters, b.local.counters);
        assert_eq!(a.target.counters, b.target.counters);
    }

    #[test]
    fn population_preserves_order() {
        let ws: Vec<_> = registry::all().into_iter().take(3).collect();
        let out = run_population(
            &Platform::emr2s(),
            &presets::local_emr(),
            &presets::numa_emr(),
            &ws,
            &opts(),
        );
        assert_eq!(out.len(), 3);
        for (w, o) in ws.iter().zip(&out) {
            assert_eq!(w.name, o.workload);
        }
    }
}
