//! Live campaign progress: a lock-light sink the harness ticks as cells
//! resolve, snapshotted on demand by observers (the server's `/metrics`
//! and `status` endpoints, the CLI's `--progress` heartbeat).
//!
//! A [`Progress`] is shared as an `Arc` between the campaign runner
//! (writer) and any number of observers (readers): counters are relaxed
//! atomics, and only the moving-rate clock takes a tiny mutex per tick.
//! Nothing here touches the result path — runs without an attached
//! sink are byte-identical to runs before this module existed.
//!
//! ETA follows the repo's n/a convention (see `TELEMETRY.md`): when an
//! estimate would require dividing by zero — a zero-cell campaign, no
//! cells resolved yet, zero elapsed time — [`ProgressSnapshot::eta_ms`]
//! is `None` and renders as `n/a`, never a fabricated number.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// How many recent cell completions feed the moving-rate window.
const RATE_WINDOW: usize = 64;

/// How a resolved cell was satisfied (mirrors
/// [`crate::campaign::CampaignRunStats`]' resolution classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Replayed from the journal.
    Journal,
    /// Served from the shared result cache.
    Cache,
    /// Actually simulated.
    Simulated,
}

/// Moving-rate clock: start instant plus the elapsed-ns stamps of the
/// most recent completions.
#[derive(Debug, Default)]
struct Clock {
    started: Option<Instant>,
    recent: VecDeque<u64>,
}

/// Shared progress sink for one campaign run.
#[derive(Debug, Default)]
pub struct Progress {
    total: AtomicUsize,
    journal: AtomicUsize,
    cache: AtomicUsize,
    simulated: AtomicUsize,
    /// Epoch for elapsed math, guarded so `begin` can set it once.
    clock: Mutex<Clock>,
}

impl Progress {
    /// Starts (or restarts) tracking a run of `total` cells.
    pub fn begin(&self, total: usize) {
        self.total.store(total, Ordering::Relaxed);
        let mut clock = self.clock.lock().expect("progress clock");
        if clock.started.is_none() {
            clock.started = Some(Instant::now());
        }
    }

    /// Records one resolved cell.
    pub fn tick(&self, how: Resolution) {
        match how {
            Resolution::Journal => &self.journal,
            Resolution::Cache => &self.cache,
            Resolution::Simulated => &self.simulated,
        }
        .fetch_add(1, Ordering::Relaxed);
        let mut clock = self.clock.lock().expect("progress clock");
        let elapsed = clock
            .started
            .map(|s| s.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64)
            .unwrap_or(0);
        if clock.recent.len() == RATE_WINDOW {
            clock.recent.pop_front();
        }
        clock.recent.push_back(elapsed);
    }

    /// Cells resolved so far (any resolution class).
    pub fn done(&self) -> usize {
        self.journal.load(Ordering::Relaxed)
            + self.cache.load(Ordering::Relaxed)
            + self.simulated.load(Ordering::Relaxed)
    }

    /// A consistent point-in-time view for rendering or serialization.
    pub fn snapshot(&self) -> ProgressSnapshot {
        let journal = self.journal.load(Ordering::Relaxed);
        let cache = self.cache.load(Ordering::Relaxed);
        let simulated = self.simulated.load(Ordering::Relaxed);
        let total = self.total.load(Ordering::Relaxed);
        let done = journal + cache + simulated;
        let clock = self.clock.lock().expect("progress clock");
        let elapsed_ns = clock
            .started
            .map(|s| s.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64)
            .unwrap_or(0);
        let window: Vec<u64> = clock.recent.iter().copied().collect();
        drop(clock);
        ProgressSnapshot {
            total,
            done,
            journal,
            cache,
            simulated,
            elapsed_ms: elapsed_ns / 1_000_000,
            eta_ms: eta_ms(total, done, elapsed_ns, &window),
        }
    }
}

/// A serializable point-in-time view of a [`Progress`] sink, surfaced in
/// `JobView` / `HealthReply` and the CLI heartbeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgressSnapshot {
    /// Cells this run owns (after shard filtering).
    pub total: usize,
    /// Cells resolved so far, `journal + cache + simulated`.
    pub done: usize,
    /// Cells replayed from the journal.
    pub journal: usize,
    /// Cells served from the result cache.
    pub cache: usize,
    /// Cells actually simulated.
    pub simulated: usize,
    /// Wall-clock ms since the run began.
    pub elapsed_ms: u64,
    /// Moving-rate ETA in ms; `None` renders as `n/a` (zero-cell or
    /// zero-elapsed runs — the empty-histogram convention).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub eta_ms: Option<u64>,
}

impl ProgressSnapshot {
    /// `"42s"` / `"4m05s"` / `"n/a"` — the ETA as a human label.
    pub fn eta_label(&self) -> String {
        match self.eta_ms {
            None => "n/a".to_string(),
            Some(ms) => fmt_duration_ms(ms),
        }
    }

    /// One-line rendering for heartbeats and `status --watch`.
    pub fn render(&self) -> String {
        let pct = if self.total > 0 {
            format!(" ({:.1}%)", 100.0 * self.done as f64 / self.total as f64)
        } else {
            String::new()
        };
        format!(
            "cells {}/{}{pct} — {} journal + {} cache + {} simulated — eta {}",
            self.done,
            self.total,
            self.journal,
            self.cache,
            self.simulated,
            self.eta_label()
        )
    }
}

/// Rounds-up-to-seconds human duration: `0s`, `42s`, `4m05s`, `1h02m`.
fn fmt_duration_ms(ms: u64) -> String {
    let secs = ms.div_ceil(1_000);
    if secs >= 3_600 {
        format!("{}h{:02}m", secs / 3_600, (secs % 3_600) / 60)
    } else if secs >= 60 {
        format!("{}m{:02}s", secs / 60, secs % 60)
    } else {
        format!("{secs}s")
    }
}

/// Moving-rate ETA over the most recent completions, falling back to the
/// whole-run average when the window is too small to carry a rate.
///
/// Returns `None` — the `n/a` convention — whenever an estimate would
/// need a division by zero: a zero-cell campaign, no cells resolved yet,
/// or zero elapsed time. `Some(0)` means the run is already complete.
pub fn eta_ms(total: usize, done: usize, elapsed_ns: u64, window: &[u64]) -> Option<u64> {
    if total == 0 || done == 0 {
        return None;
    }
    if done >= total {
        return Some(0);
    }
    let remaining = (total - done) as f64;
    // Rate from the recent window when it spans real time; otherwise the
    // whole-run average (e.g. a burst of journal hits lands on one
    // instant and carries no rate of its own).
    let cells_per_ns = match (window.first(), window.last()) {
        (Some(&first), Some(&last)) if window.len() >= 2 && last > first => {
            (window.len() - 1) as f64 / (last - first) as f64
        }
        _ if elapsed_ns > 0 => done as f64 / elapsed_ns as f64,
        _ => return None,
    };
    let eta_ns = remaining / cells_per_ns;
    Some((eta_ns / 1e6).ceil() as u64)
}

/// Process-wide heartbeat flag, wired to `--progress` on direct
/// `melody campaign` / `run` invocations the same way `exec`'s globals
/// are wired to their flags. Off by default: the heartbeat thread is
/// never spawned and output stays byte-identical.
static HEARTBEAT: AtomicU64 = AtomicU64::new(0);

/// Enables the stderr progress heartbeat with the given period (ms).
pub fn set_heartbeat_ms(ms: u64) {
    HEARTBEAT.store(ms, Ordering::Relaxed);
}

/// The heartbeat period, if `--progress` enabled one.
pub fn heartbeat_ms() -> Option<u64> {
    match HEARTBEAT.load(Ordering::Relaxed) {
        0 => None,
        ms => Some(ms),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_guards_refuse_to_divide_by_zero() {
        // Zero-cell campaign: nothing to estimate.
        assert_eq!(eta_ms(0, 0, 1_000_000, &[]), None);
        // Nothing resolved yet: no rate exists.
        assert_eq!(eta_ms(10, 0, 1_000_000, &[]), None);
        // Zero elapsed and a window that spans no time: still n/a.
        assert_eq!(eta_ms(10, 5, 0, &[0, 0, 0]), None);
        // Complete runs answer zero, not n/a.
        assert_eq!(eta_ms(10, 10, 0, &[]), Some(0));
        assert_eq!(eta_ms(10, 12, 5, &[1, 2]), Some(0));
    }

    #[test]
    fn eta_uses_moving_rate_then_falls_back() {
        // Window: 4 completions 1ms apart -> 1 cell/ms; 6 remain -> 6ms.
        let w: Vec<u64> = (0..4).map(|i| i * 1_000_000).collect();
        assert_eq!(eta_ms(10, 4, 3_000_000, &w), Some(6));
        // Degenerate window (single entry) falls back to run average:
        // 4 cells over 8ms -> 2ms/cell; 6 remain -> 12ms.
        assert_eq!(eta_ms(10, 4, 8_000_000, &[8_000_000]), Some(12));
    }

    #[test]
    fn zero_cell_snapshot_renders_na() {
        let p = Progress::default();
        p.begin(0);
        let s = p.snapshot();
        assert_eq!(s.total, 0);
        assert_eq!(s.eta_ms, None);
        assert_eq!(s.eta_label(), "n/a");
        assert!(s.render().contains("eta n/a"), "{}", s.render());
    }

    #[test]
    fn ticks_accumulate_and_done_is_monotonic() {
        let p = Progress::default();
        p.begin(5);
        let mut last = 0;
        for how in [
            Resolution::Journal,
            Resolution::Cache,
            Resolution::Simulated,
            Resolution::Simulated,
        ] {
            p.tick(how);
            let done = p.done();
            assert!(done > last, "done must be monotonic");
            last = done;
        }
        let s = p.snapshot();
        assert_eq!((s.journal, s.cache, s.simulated), (1, 1, 2));
        assert_eq!(s.done, 4);
        assert_eq!(s.total, 5);
    }

    #[test]
    fn snapshot_serializes_without_eta_when_na() {
        let p = Progress::default();
        p.begin(0);
        let json = serde_json::to_string(&p.snapshot()).expect("serializes");
        assert!(!json.contains("eta_ms"), "{json}");
        let back: ProgressSnapshot = serde_json::from_str(&json).expect("roundtrips");
        assert_eq!(back.eta_ms, None);
    }

    #[test]
    fn duration_labels() {
        assert_eq!(fmt_duration_ms(0), "0s");
        assert_eq!(fmt_duration_ms(500), "1s");
        assert_eq!(fmt_duration_ms(42_000), "42s");
        assert_eq!(fmt_duration_ms(245_000), "4m05s");
        assert_eq!(fmt_duration_ms(3_720_000), "1h02m");
    }
}
