//! Content-addressed on-disk result cache.
//!
//! The campaign engine ([`crate::campaign`]) keys every simulation cell
//! by a stable fingerprint of its *fully resolved* configuration —
//! platform parameters, device spec, workload spec, fault regime, run
//! options, and the code-schema version stamps — and stores the cell's
//! serialized result under that key. Because the simulator is
//! deterministic, a fingerprint hit can be loaded instead of
//! re-simulated with byte-identical downstream output.
//!
//! Layout: one JSON file per cell at
//! `<root>/<key[0..2]>/<key>.json`, each a `CacheEntry` envelope
//! `{"v": <schema>, "key": <fingerprint>, "payload": <cell JSON>}`.
//! The two-character fan-out directories keep any single directory from
//! accumulating hundreds of thousands of entries on full-scale grids.
//!
//! Robustness rules (enforced by the fuzz/corruption tests):
//!
//! - **Corruption is a miss, never a panic.** A truncated, garbled, or
//!   wrong-version entry is counted (`cache.corrupt` telemetry counter +
//!   [`CacheStats::corrupt`]) and treated as a miss; the cell simply
//!   re-simulates and the entry is rewritten.
//! - **Writes are atomic.** Entries are written to a temp file and
//!   renamed into place, so a killed run never leaves a half-written
//!   entry that a later run would have to classify.
//! - **Self-invalidating.** [`CACHE_SCHEMA_VERSION`] is stored in every
//!   envelope *and* mixed into every fingerprint; schema bumps make old
//!   entries unreachable (different key) and unreadable (version check)
//!   at once.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::{fs, io};

use serde::{Deserialize, Serialize};

/// Version of the on-disk cache envelope *and* of the result payloads
/// melody writes into it. Mixed into every fingerprint, so bumping it
/// orphans (rather than misinterprets) every existing cache entry.
///
/// Bump procedure (see EXPERIMENTS.md "Campaigns and the result cache"):
/// increment this constant whenever a cached payload's meaning changes —
/// a result struct gains/renames a field, a simulation fix changes
/// outputs without touching [`melody_mem::SPEC_SCHEMA_VERSION`] /
/// [`melody_workloads::SPEC_SCHEMA_VERSION`], or the envelope format
/// itself changes — and note the bump in CHANGES.md.
///
/// v3: topology-lowered device specs joined the campaign device axis
/// (the `AccessBreakdown::node` field and switch contention model can
/// shift results for composite devices), so all v2 entries are orphaned.
///
/// v4: tiering policies joined the campaign grid (`policies` axis,
/// `CampaignRow::policy`) and the CPU engine grew the full-stream
/// slot tap for tiered devices, so all v3 entries are orphaned.
pub const CACHE_SCHEMA_VERSION: u32 = 4;

/// 64-bit FNV-1a over `bytes`, from an arbitrary offset basis.
fn fnv64(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Stable 128-bit hex fingerprint of an ordered list of string parts.
///
/// Two independent FNV-1a-64 passes (distinct offset bases, which makes
/// them behave as independent hash functions) are concatenated into 32
/// hex characters. Parts are length-prefixed so `["ab","c"]` and
/// `["a","bc"]` cannot collide structurally.
pub fn fingerprint(parts: &[&str]) -> String {
    let mut a: u64 = 0xcbf29ce484222325; // standard FNV offset basis
    let mut b: u64 = 0x6d656c6f64792121; // "melody!!"
    for p in parts {
        let len = (p.len() as u64).to_le_bytes();
        a = fnv64(fnv64(a, &len), p.as_bytes());
        b = fnv64(fnv64(b, &len), p.as_bytes());
    }
    format!("{a:016x}{b:016x}")
}

/// On-disk envelope of one cached cell result.
#[derive(Debug, Serialize, Deserialize)]
struct CacheEntry {
    /// [`CACHE_SCHEMA_VERSION`] at write time.
    v: u32,
    /// The fingerprint this entry was stored under (defends against
    /// renamed/copied files).
    key: String,
    /// The cell result, JSON-encoded by the campaign layer.
    payload: String,
}

/// Hit/miss/corruption counters of one cache handle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups served from disk.
    pub hits: u64,
    /// Lookups with no (valid) entry.
    pub misses: u64,
    /// Entries that existed but failed validation (truncated, garbled,
    /// wrong version, wrong key). Each also counts as a miss.
    pub corrupt: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// One-line render used on stderr by `melody campaign` (stderr so
    /// cache state never perturbs byte-compared stdout output).
    pub fn render(&self) -> String {
        format!(
            "cache: {} hits, {} misses, {} corrupt ({:.1}% warm)",
            self.hits,
            self.misses,
            self.corrupt,
            self.hit_rate() * 100.0
        )
    }
}

/// A content-addressed result cache rooted at one directory.
///
/// Counters are atomics so a shared handle can be consulted from the
/// worker pool; the lookup/store operations themselves are plain
/// filesystem reads/atomic renames and need no lock.
#[derive(Debug)]
pub struct ResultCache {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
}

impl ResultCache {
    /// Opens (creating if needed) a cache rooted at `root`.
    pub fn open(root: impl AsRef<Path>) -> io::Result<Self> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(Self {
            root,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
        })
    }

    /// The cache's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        let shard = key.get(0..2).unwrap_or("xx");
        self.root.join(shard).join(format!("{key}.json"))
    }

    fn note_corrupt(&self) {
        self.corrupt.fetch_add(1, Ordering::Relaxed);
        if melody_telemetry::metrics_on() {
            melody_telemetry::count("cache.corrupt", 1);
        }
    }

    /// Looks up `key`, returning the stored payload on a valid hit.
    ///
    /// Any defect — unreadable file, truncated/garbled JSON, version or
    /// key mismatch — is a miss (and counts toward
    /// [`CacheStats::corrupt`] when an entry existed but was invalid).
    pub fn get(&self, key: &str) -> Option<String> {
        let path = self.entry_path(key);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                if e.kind() != io::ErrorKind::NotFound {
                    self.note_corrupt();
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match serde_json::from_str::<CacheEntry>(&text) {
            Ok(entry) if entry.v == CACHE_SCHEMA_VERSION && entry.key == key => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if melody_telemetry::metrics_on() {
                    melody_telemetry::count("cache.hits", 1);
                }
                Some(entry.payload)
            }
            _ => {
                // Exists but is not a valid entry for this key/schema.
                self.note_corrupt();
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `payload` under `key` atomically (temp file + rename).
    /// A racing writer for the same key simply wins last; both write the
    /// identical content for a deterministic simulator.
    pub fn put(&self, key: &str, payload: &str) -> io::Result<()> {
        let path = self.entry_path(key);
        let dir = path.parent().expect("entry path has a shard directory");
        fs::create_dir_all(dir)?;
        let entry = CacheEntry {
            v: CACHE_SCHEMA_VERSION,
            key: key.to_string(),
            payload: payload.to_string(),
        };
        let json = serde_json::to_string(&entry)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
        // The temp name must be unique per *writer*, not just per
        // process: two worker threads resolving the same fingerprint
        // would otherwise interleave truncate/write/rename on one temp
        // file and could rename a half-written entry into place. The
        // (pid, global sequence) pair keeps concurrent threads and
        // concurrent processes on disjoint temp files; whichever rename
        // lands last wins with a complete envelope.
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = dir.join(format!(
            ".{key}.tmp-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, json.as_bytes())?;
        fs::rename(&tmp, &path)?;
        if melody_telemetry::metrics_on() {
            melody_telemetry::count("cache.puts", 1);
            melody_telemetry::record_ns("cache.entry_bytes", payload.len() as u64);
        }
        Ok(())
    }

    /// Snapshot of the hit/miss/corruption counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
        }
    }
}

/// Process-wide cache configured by the CLI's `--cache DIR` flag.
///
/// `None` (the default) keeps every experiment driver on its exact
/// pre-cache code path — [`crate::campaign::cached_map`] degenerates to
/// a plain [`crate::exec::parallel_map`] — so cache-less runs stay
/// byte-identical to builds without the cache layer.
static GLOBAL: Mutex<Option<ResultCache>> = Mutex::new(None);

/// Installs (or with `None`, removes) the process-wide cache.
pub fn set_global(cache: Option<ResultCache>) {
    *GLOBAL.lock().expect("cache registry lock") = cache;
}

/// True when a process-wide cache is installed.
pub fn global_enabled() -> bool {
    GLOBAL.lock().expect("cache registry lock").is_some()
}

/// Runs `f` with the process-wide cache handle (if any).
pub fn with_global<R>(f: impl FnOnce(Option<&ResultCache>) -> R) -> R {
    let guard = GLOBAL.lock().expect("cache registry lock");
    f(guard.as_ref())
}

/// Counter snapshot of the process-wide cache, if one is installed.
pub fn global_stats() -> Option<CacheStats> {
    with_global(|c| c.map(|c| c.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_cache(name: &str) -> ResultCache {
        let mut p = std::env::temp_dir();
        p.push(format!("melody-cache-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        ResultCache::open(&p).expect("open cache")
    }

    #[test]
    fn fingerprint_is_stable_and_structural() {
        let a = fingerprint(&["platform", "device", "workload"]);
        let b = fingerprint(&["platform", "device", "workload"]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 32);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
        // Length prefixing: repartitioned parts must not collide.
        assert_ne!(fingerprint(&["ab", "c"]), fingerprint(&["a", "bc"]));
        assert_ne!(fingerprint(&["x"]), fingerprint(&["x", ""]));
    }

    #[test]
    fn put_get_roundtrip() {
        let c = tmp_cache("roundtrip");
        let key = fingerprint(&["k1"]);
        assert_eq!(c.get(&key), None);
        c.put(&key, "{\"v\":1.25}").expect("put");
        assert_eq!(c.get(&key).as_deref(), Some("{\"v\":1.25}"));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.corrupt), (1, 1, 0));
        let _ = fs::remove_dir_all(c.root());
    }

    #[test]
    fn wrong_key_in_envelope_is_corrupt_miss() {
        let c = tmp_cache("renamed");
        let k1 = fingerprint(&["one"]);
        let k2 = fingerprint(&["two"]);
        c.put(&k1, "payload").expect("put");
        // Simulate a copied/renamed file: k1's envelope under k2's path.
        let from = c.entry_path(&k1);
        let to = c.entry_path(&k2);
        fs::create_dir_all(to.parent().unwrap()).unwrap();
        fs::copy(&from, &to).expect("copy entry");
        assert_eq!(c.get(&k2), None, "key mismatch must miss");
        assert_eq!(c.stats().corrupt, 1);
        let _ = fs::remove_dir_all(c.root());
    }

    #[test]
    fn truncated_entry_is_corrupt_miss_then_recovers() {
        let c = tmp_cache("truncated");
        let key = fingerprint(&["t"]);
        c.put(&key, "{\"data\":[1,2,3]}").expect("put");
        let path = c.entry_path(&key);
        let full = fs::read_to_string(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert_eq!(c.get(&key), None);
        assert_eq!(c.stats().corrupt, 1);
        // A rewrite heals the entry.
        c.put(&key, "{\"data\":[1,2,3]}").expect("re-put");
        assert_eq!(c.get(&key).as_deref(), Some("{\"data\":[1,2,3]}"));
        let _ = fs::remove_dir_all(c.root());
    }

    #[test]
    fn concurrent_writers_same_key_never_corrupt() {
        // Two cache handles on one root (stand-ins for two processes),
        // hammered from several threads resolving the *same*
        // fingerprint: every put must succeed, and the surviving entry
        // must always be a complete, valid envelope.
        let a = tmp_cache("race");
        let b = ResultCache::open(a.root()).expect("second handle");
        let key = fingerprint(&["contended-cell"]);
        let payload = format!("{{\"data\":{:?}}}", vec![1.25f64; 256]);
        std::thread::scope(|s| {
            for _ in 0..4 {
                for c in [&a, &b] {
                    let (key, payload) = (&key, &payload);
                    s.spawn(move || {
                        for _ in 0..50 {
                            c.put(key, payload).expect("concurrent put succeeds");
                        }
                    });
                }
            }
        });
        // No temp litter left behind, and the entry reads back intact.
        let shard_dir = a.root().join(&key[0..2]);
        let leftovers: Vec<_> = fs::read_dir(&shard_dir)
            .expect("shard dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
        // Exact accounting on a fresh handle: one lookup, one hit,
        // zero misses, zero corrupt envelopes.
        let fresh = ResultCache::open(a.root()).expect("fresh handle");
        assert_eq!(fresh.get(&key).as_deref(), Some(payload.as_str()));
        assert_eq!(
            fresh.stats(),
            CacheStats {
                hits: 1,
                misses: 0,
                corrupt: 0
            }
        );
        let _ = fs::remove_dir_all(a.root());
    }

    #[test]
    fn stats_render_shape() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            corrupt: 0,
        };
        assert_eq!(
            s.render(),
            "cache: 3 hits, 1 misses, 0 corrupt (75.0% warm)"
        );
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
