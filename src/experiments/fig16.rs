//! Figure 16: period-based slowdown breakdown over workload lifetime for
//! `602.gcc`, `605.mcf` and `631.deepsjeng`.

use melody_cpu::Platform;
use melody_mem::presets;
use melody_spa::period::{analyze, PeriodAnalysis};
use melody_workloads::registry;
use serde::{Deserialize, Serialize};

use crate::report::TableData;
use crate::runner::{run_workload, RunOptions};

use super::Scale;

/// Period analysis for one workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig16Panel {
    /// Workload name.
    pub workload: String,
    /// Period-by-period breakdowns.
    pub analysis: PeriodAnalysis,
    /// Whole-workload mean slowdown (fraction).
    pub overall_slowdown: f64,
}

impl Fig16Panel {
    /// Renders the per-period breakdown.
    pub fn render(&self) -> String {
        let mut t = TableData::new(
            format!(
                "fig16: {} per-period breakdown ({} instr/period), % of local cycles",
                self.workload, self.analysis.period_instructions
            ),
            &[
                "Period", "DRAM", "L3", "L2", "L1", "Store", "Other", "Total",
            ],
        );
        for (i, b) in self.analysis.periods.iter().enumerate() {
            t.push_row(vec![
                i.to_string(),
                format!("{:.1}", b.dram * 100.0),
                format!("{:.1}", b.l3 * 100.0),
                format!("{:.1}", b.l2 * 100.0),
                format!("{:.1}", b.l1 * 100.0),
                format!("{:.1}", b.store * 100.0),
                format!("{:.1}", (b.other + b.core) * 100.0),
                format!("{:.1}", b.total * 100.0),
            ]);
        }
        t.render()
    }
}

/// Runs the Figure 16 experiment on a CXL device (the paper uses the
/// period = 1 B instructions at full hardware scale; the simulated runs
/// scale the period to the stream length so each workload spans tens of
/// periods).
pub fn run(scale: Scale) -> Vec<Fig16Panel> {
    let platform = Platform::emr2s();
    let opts = RunOptions {
        mem_refs: scale.mem_refs() * 2,
        sample_interval_ns: Some(5_000),
        ..Default::default()
    };
    ["602.gcc", "605.mcf", "631.deepsjeng"]
        .iter()
        .map(|name| {
            let w = registry::by_name(name).expect("registry workload");
            let local = run_workload(&platform, &presets::local_emr(), &w, &opts);
            let cxl = run_workload(&platform, &presets::cxl_b(), &w, &opts);
            let total_instr = local.counters.instructions;
            let period = (total_instr / 40).max(1);
            let mut analysis = analyze(&local.samples, &cxl.samples, period);
            // Drop the final (partial) period: the end-of-run pipeline
            // drain falls outside the sampled windows and distorts it.
            analysis.periods.pop();
            analysis.local_cycles.pop();
            Fig16Panel {
                workload: name.to_string(),
                overall_slowdown: cxl.slowdown_vs(&local),
                analysis,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcc_slowdown_concentrates_in_early_phase() {
        let panels = run(Scale::Smoke);
        let gcc = panels
            .iter()
            .find(|p| p.workload == "602.gcc")
            .expect("gcc");
        let periods = &gcc.analysis.periods;
        assert!(periods.len() >= 10, "need periods, got {}", periods.len());
        // 602.gcc: the memory-heavy phase is the first ~64% of
        // instructions; its mean period slowdown should clearly exceed
        // the tail phase's (paper: >30% early vs ~20% overall).
        let cut = periods.len() * 64 / 100;
        let early: f64 = periods[..cut].iter().map(|b| b.total).sum::<f64>() / cut.max(1) as f64;
        let late: f64 = periods[cut..].iter().map(|b| b.total).sum::<f64>()
            / (periods.len() - cut).max(1) as f64;
        assert!(
            early > late + 0.05,
            "gcc early {early:.3} should exceed late {late:.3}"
        );
    }

    #[test]
    fn mcf_exhibits_bursts() {
        let panels = run(Scale::Smoke);
        let mcf = panels
            .iter()
            .find(|p| p.workload == "605.mcf")
            .expect("mcf");
        let mean = mcf.analysis.mean_slowdown();
        let bursty = mcf.analysis.bursty_periods(mean * 1.3);
        assert!(
            !bursty.is_empty(),
            "mcf should have periods well above its mean slowdown"
        );
    }

    #[test]
    fn overall_slowdowns_match_weighted_period_means() {
        // The cycle-weighted mean of per-period slowdowns must conserve
        // the whole-run slowdown (up to sampling truncation at the ends).
        for p in run(Scale::Smoke) {
            let m = p.analysis.weighted_mean_slowdown();
            assert!(
                (m - p.overall_slowdown).abs() < 0.15 * (1.0 + p.overall_slowdown.abs()),
                "{}: weighted mean {m:.3} vs overall {:.3}",
                p.workload,
                p.overall_slowdown
            );
        }
    }
}
