//! Tail-latency experiments: Figures 3b, 3c, 4 and 6.

use melody_cpu::{Core, CoreConfig, Platform, Slot};
use melody_mem::{presets, DeviceSpec};
use melody_mio::{self as mio, MioConfig};
use melody_sim::SimRng;
use serde::{Deserialize, Serialize};

use crate::report::Series;

use super::Scale;

fn standard_configs() -> Vec<DeviceSpec> {
    vec![
        presets::local_emr(),
        presets::numa_emr(),
        presets::cxl_a(),
        presets::cxl_b(),
        presets::cxl_c(),
        presets::cxl_d(),
    ]
}

/// One latency CDF per (config, thread-count) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CdfCell {
    /// Memory configuration name.
    pub config: String,
    /// Number of co-located chase (or noise) threads.
    pub threads: usize,
    /// `(latency ns, cumulative fraction)` points.
    pub cdf: Vec<(u64, f64)>,
    /// Median latency, ns.
    pub p50: u64,
    /// p99.9 latency, ns.
    pub p999: u64,
    /// p99.9 − p50 gap, ns.
    pub gap: u64,
}

/// Flattens a (config × threads) sweep into one parallel work list,
/// preserving the serial nested-loop order (configs outer, threads
/// inner). `domain` keys the per-figure result-cache namespace and
/// `params` the figure-level knobs that go into each cell fingerprint
/// alongside the device spec and thread count.
fn sweep_cells(
    domain: &str,
    params: &str,
    configs: &[DeviceSpec],
    threads: &[usize],
    cell: impl Fn(&DeviceSpec, usize) -> CdfCell + Sync,
) -> Vec<CdfCell> {
    let flat: Vec<(&DeviceSpec, usize)> = configs
        .iter()
        .flat_map(|spec| threads.iter().map(move |&n| (spec, n)))
        .collect();
    crate::campaign::cached_map(
        domain,
        &flat,
        |(spec, n)| {
            format!(
                "{{\"spec\":{},\"threads\":{n},\"params\":{params}}}",
                spec.canonical_json()
            )
        },
        |(spec, n)| cell(spec, *n),
    )
}

/// Figure 3b: pointer-chase latency CDFs under 1–32 co-located chase
/// threads, prefetchers off.
pub fn fig03b(scale: Scale) -> Vec<CdfCell> {
    let threads = [1usize, 2, 4, 8, 16, 32];
    let params = format!("{{\"accesses\":{}}}", scale.mio_accesses());
    sweep_cells(
        "mio.fig03b",
        &params,
        &standard_configs(),
        &threads,
        |spec, n| {
            let r = mio::run(
                spec,
                &MioConfig {
                    chase_threads: n,
                    accesses: scale.mio_accesses(),
                    ..MioConfig::default()
                },
            );
            CdfCell {
                config: spec.name(),
                threads: n,
                cdf: r.latency.cdf_points(),
                p50: r.latency.percentile(50.0),
                p999: r.latency.percentile(99.9),
                gap: r.tail_gap_ns,
            }
        },
    )
}

/// Figure 3c: (p99.9 − p50) tail gap vs achieved bandwidth utilization.
/// Returns one series per config: `(bandwidth %, gap ns)`.
pub fn fig03c(scale: Scale) -> Vec<Series> {
    // Peak read bandwidths used to normalise utilization (Table 1).
    let peaks = [
        ("Local", 240.0),
        ("Local+NUMA", 120.0),
        ("CXL-A", 22.0),
        ("CXL-B", 20.0),
        ("CXL-C", 18.0),
        ("CXL-D", 46.0),
    ];
    let noise_steps = [0usize, 1, 2, 3, 5, 8, 12, 20];
    let key = |spec: &DeviceSpec| {
        format!(
            "{{\"spec\":{},\"noise_steps\":{noise_steps:?},\"accesses\":{}}}",
            spec.canonical_json(),
            scale.mio_accesses()
        )
    };
    crate::campaign::cached_map("mio.pressure", &standard_configs(), key, |spec| {
        let pts = mio::bandwidth_pressure_sweep(spec, &noise_steps, scale.mio_accesses());
        let peak = peaks
            .iter()
            .find(|(n, _)| *n == spec.name())
            .map(|(_, p)| *p)
            .unwrap_or(100.0);
        let series = pts
            .into_iter()
            .map(|(bw, gap)| ((bw / peak * 100.0).min(100.0), gap as f64))
            .collect();
        Series::new(spec.name(), series)
    })
}

/// Figure 4: latency CDFs under 0–7 background read/write noise threads.
pub fn fig04(scale: Scale) -> Vec<CdfCell> {
    let noise = [0usize, 1, 3, 5, 7];
    let params = format!(
        "{{\"accesses\":{},\"noise_read_frac\":0.6}}",
        scale.mio_accesses()
    );
    sweep_cells(
        "mio.fig04",
        &params,
        &standard_configs(),
        &noise,
        |spec, n| {
            let r = mio::run(
                spec,
                &MioConfig {
                    noise_threads: n,
                    noise_read_frac: 0.6,
                    accesses: scale.mio_accesses(),
                    ..MioConfig::default()
                },
            );
            CdfCell {
                config: spec.name(),
                threads: n,
                cdf: r.latency.cdf_points(),
                p50: r.latency.percentile(50.0),
                p999: r.latency.percentile(99.9),
                gap: r.tail_gap_ns,
            }
        },
    )
}

/// Figure 6: chase latency CDFs with CPU prefetchers *on*, via the core
/// model. The chase is partially stride-predictable so prefetchers can
/// engage (matching the lower observed latencies of the paper's figure).
pub fn fig06(scale: Scale) -> Vec<CdfCell> {
    let threads = [1usize, 2, 4, 8, 16, 32];
    let params = format!("{{\"accesses\":{}}}", scale.mio_accesses());
    sweep_cells(
        "core.fig06",
        &params,
        &standard_configs(),
        &threads,
        |spec, n| {
            let mut cfg = CoreConfig::new(Platform::emr2s().smp_scaled(n as u32));
            cfg.prefetchers = true;
            let mut rng = SimRng::seed_from(0xF1606 ^ n as u64);
            let accesses = (scale.mio_accesses() / 4).max(5_000);
            // Mostly sequential walk with occasional random jumps: the
            // prefetcher-friendly pattern the paper's Figure 6 probes.
            let mut line = 0u64;
            let stream: Vec<Slot> = (0..accesses)
                .map(|_| {
                    if rng.chance(0.05) {
                        line = rng.below(1 << 24);
                    } else {
                        line += 1;
                    }
                    Slot::Load {
                        addr: line * 64,
                        dependent: true,
                    }
                })
                .collect();
            let core = Core::new(cfg, spec.build(0xF1606));
            let r = core.run(stream);
            let h = &r.dep_load_hist;
            CdfCell {
                config: spec.name(),
                threads: n,
                cdf: h.cdf_points(),
                p50: h.percentile(50.0),
                p999: h.percentile(99.9),
                gap: h.percentile_gap(50.0, 99.9),
            }
        },
    )
}

/// Summarises a cell list as a table: one row per (config, threads).
pub fn render_cells(title: &str, cells: &[CdfCell]) -> String {
    let mut t = crate::report::TableData::new(
        title,
        &["Config", "Threads", "p50 (ns)", "p99.9 (ns)", "gap (ns)"],
    );
    for c in cells {
        t.push_row(vec![
            c.config.clone(),
            c.threads.to_string(),
            c.p50.to_string(),
            c.p999.to_string(),
            c.gap.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gap_of(cells: &[CdfCell], config: &str, threads: usize) -> u64 {
        cells
            .iter()
            .find(|c| c.config == config && c.threads == threads)
            .unwrap_or_else(|| panic!("missing cell {config}/{threads}"))
            .gap
    }

    #[test]
    fn fig3b_finding1_tail_ordering() {
        let cells = fig03b(Scale::Smoke);
        assert_eq!(cells.len(), 36);
        // Paper Finding #1: local & NUMA stable; CXL-B/C heavy tails;
        // CXL-D the most stable CXL device.
        let local = gap_of(&cells, "Local", 8);
        let b = gap_of(&cells, "CXL-B", 8);
        let c = gap_of(&cells, "CXL-C", 8);
        let d = gap_of(&cells, "CXL-D", 8);
        assert!(local < 110, "local gap {local}");
        assert!(b > local * 2, "B {b} vs local {local}");
        assert!(c > local * 2, "C {c} vs local {local}");
        assert!(d < b, "D {d} vs B {b}");
    }

    #[test]
    fn fig4_noise_widens_cxl_tails_only() {
        let cells = fig04(Scale::Smoke);
        let local_quiet = gap_of(&cells, "Local", 0);
        let local_noisy = gap_of(&cells, "Local", 7);
        let a_quiet = gap_of(&cells, "CXL-A", 0);
        let a_noisy = gap_of(&cells, "CXL-A", 7);
        assert!(local_noisy < local_quiet + 120, "local stays stable");
        assert!(
            a_noisy > a_quiet,
            "CXL-A should degrade: {a_quiet} -> {a_noisy}"
        );
    }

    #[test]
    fn fig6_prefetchers_lower_median_but_not_tails() {
        let cells = fig06(Scale::Smoke);
        let cell = cells
            .iter()
            .find(|c| c.config == "CXL-B" && c.threads == 1)
            .expect("cell");
        // Prefetch-covered medians sit near cache latencies, far below
        // the 271 ns device latency...
        assert!(cell.p50 < 150, "prefetched median {}", cell.p50);
        // ...but the p99.9 tail still reaches toward device latency
        // (prefetching cannot eliminate CXL tails — Finding #1d).
        assert!(cell.p999 > 100, "tail should persist: {}", cell.p999);
    }
}
