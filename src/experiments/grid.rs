//! The workload-population grid and every figure derived from it:
//! Figure 8a/8b (slowdown CDFs), Figure 8e (SPR vs EMR), Figure 9a
//! (violin plots over the latency spectrum), Figure 11 (Spa accuracy),
//! Figure 12 (prefetcher shift), Figure 14 (per-workload breakdowns) and
//! Figure 15 (breakdown CDFs).

use melody_spa::{accuracy, prefetch, AccuracyReport};
use melody_stats::{Cdf, ViolinSummary};
use serde::{Deserialize, Serialize};

use crate::report::{Series, TableData};
use crate::runner::{run_pair, PairOutcome, RunOptions};
use crate::testbed::{emr_cxl_setups, full_latency_spectrum, spr_cxl_setups, Setup};

use super::Scale;

/// All pair outcomes for a set of setups over one workload population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridData {
    /// `(setup label, outcomes in workload order)`.
    pub cells: Vec<(String, Vec<PairOutcome>)>,
}

impl GridData {
    /// Outcomes for one setup label.
    pub fn setup(&self, label: &str) -> Option<&[PairOutcome]> {
        self.cells
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, v)| v.as_slice())
    }

    /// Slowdown CDF (percent) for one setup.
    ///
    /// # Panics
    ///
    /// Panics if the label is unknown.
    pub fn slowdown_cdf(&self, label: &str) -> Cdf {
        let outcomes = self.setup(label).expect("known setup label");
        Cdf::from_samples(outcomes.iter().map(|o| o.slowdown * 100.0))
    }

    /// Figure 8a: slowdown CDF series per setup, `(slowdown %, fraction)`.
    pub fn fig8a(&self) -> Vec<Series> {
        self.cells
            .iter()
            .map(|(label, _)| {
                let cdf = self.slowdown_cdf(label);
                Series::new(label.clone(), cdf.points())
            })
            .collect()
    }

    /// Figure 8b: the p90-and-above region of each slowdown CDF.
    pub fn fig8b(&self) -> Vec<Series> {
        self.fig8a()
            .into_iter()
            .map(|s| {
                let pts = s.points.into_iter().filter(|(_, f)| *f >= 0.9).collect();
                Series::new(s.name, pts)
            })
            .collect()
    }

    /// Figure 9a: violin summaries of slowdowns per setup (percent).
    pub fn fig9a(&self) -> Vec<(String, ViolinSummary)> {
        self.cells
            .iter()
            .map(|(label, outcomes)| {
                let samples: Vec<f64> = outcomes.iter().map(|o| o.slowdown * 100.0).collect();
                (label.clone(), ViolinSummary::from_samples(&samples, 24))
            })
            .collect()
    }

    /// Figure 11: Spa estimator accuracy per setup.
    pub fn fig11(&self, label: &str) -> AccuracyReport {
        let outcomes = self.setup(label).expect("known setup label");
        accuracy(
            outcomes
                .iter()
                .map(|o| (&o.local.counters, &o.target.counters)),
        )
    }

    /// Figure 12a: the L2PF→L1PF miss-shift analysis for one setup.
    ///
    /// Restricted to *single-threaded* workloads, matching the paper's
    /// single-copy SPEC/GAPBS measurements: at multi-threaded streaming
    /// rates the prefetch-buffer budgets bind and cap the L1 prefetcher's
    /// pickup of dropped L2 prefetches, which washes out the y ≈ x
    /// relation (see `DESIGN.md` §5).
    pub fn fig12a(&self, label: &str) -> prefetch::ShiftAnalysis {
        let outcomes = self.setup(label).expect("known setup label");
        let single_threaded: Vec<&PairOutcome> = outcomes
            .iter()
            .filter(|o| {
                melody_workloads::registry::by_name(&o.workload)
                    .map(|w| w.threads == 1)
                    .unwrap_or(false)
            })
            .collect();
        prefetch::shift_analysis(
            single_threaded
                .iter()
                .map(|o| (&o.local.counters, &o.target.counters)),
        )
    }

    /// Figure 12b: per-workload `(L2 slowdown %, L2PF coverage decrease
    /// pp)` points for one setup.
    pub fn fig12b(&self, label: &str) -> Vec<(String, f64, f64)> {
        self.setup(label)
            .expect("known setup label")
            .iter()
            .map(|o| {
                (
                    o.workload.clone(),
                    o.breakdown.l2 * 100.0,
                    prefetch::coverage_decrease_pp(&o.local.counters, &o.target.counters),
                )
            })
            .collect()
    }

    /// Figure 14: per-workload stacked breakdown rows for one setup.
    pub fn fig14(&self, label: &str) -> TableData {
        let mut t = TableData::new(
            format!("fig14: slowdown breakdown ({label}), % of baseline cycles"),
            &[
                "Workload", "DRAM", "L3", "L2", "L1", "Store", "Core", "Other", "Total",
            ],
        );
        for o in self.setup(label).expect("known setup label") {
            let b = &o.breakdown;
            t.push_row(vec![
                o.workload.clone(),
                format!("{:.1}", b.dram * 100.0),
                format!("{:.1}", b.l3 * 100.0),
                format!("{:.1}", b.l2 * 100.0),
                format!("{:.1}", b.l1 * 100.0),
                format!("{:.1}", b.store * 100.0),
                format!("{:.1}", b.core * 100.0),
                format!("{:.1}", b.other * 100.0),
                format!("{:.1}", b.total * 100.0),
            ]);
        }
        t
    }

    /// Figure 15: CDFs of each breakdown component (percent) across all
    /// workloads of one setup.
    pub fn fig15(&self, label: &str) -> Vec<Series> {
        let outcomes = self.setup(label).expect("known setup label");
        let comp = |f: &dyn Fn(&PairOutcome) -> f64, name: &str| {
            let cdf = Cdf::from_samples(outcomes.iter().map(|o| f(o).max(0.0) * 100.0));
            Series::new(name, cdf.points())
        };
        vec![
            comp(&|o| o.breakdown.store, "Store"),
            comp(&|o| o.breakdown.l1, "L1"),
            comp(&|o| o.breakdown.l2, "L2"),
            comp(&|o| o.breakdown.l3, "L3"),
            comp(&|o| o.breakdown.dram, "DRAM"),
        ]
    }
}

/// Runs a grid over the given setups.
///
/// The (setup × workload) cells are flattened into one work list and
/// fanned out over the configured worker pool ([`crate::exec::jobs`]),
/// so all cores stay busy even when there are fewer setups than cores.
/// Each cell's RNG seed derives from its identity alone, so the output
/// is identical to the serial nested loop for any worker count.
pub fn run_grid(setups: &[Setup], scale: Scale) -> GridData {
    let workloads = scale.select_workloads();
    let opts = RunOptions {
        mem_refs: scale.mem_refs(),
        ..Default::default()
    };
    let flat: Vec<(&Setup, &melody_workloads::WorkloadSpec)> = setups
        .iter()
        .flat_map(|s| workloads.iter().map(move |w| (s, w)))
        .collect();
    let outcomes = crate::campaign::cached_map(
        "pair",
        &flat,
        |(s, w)| crate::campaign::pair_config_json(&s.platform, &s.local, &s.target, w, &opts),
        |(s, w)| run_pair(&s.platform, &s.local, &s.target, w, &opts),
    );
    let mut rest = outcomes.as_slice();
    let cells = setups
        .iter()
        .map(|s| {
            let (chunk, tail) = rest.split_at(workloads.len());
            rest = tail;
            (s.label.clone(), chunk.to_vec())
        })
        .collect();
    GridData { cells }
}

/// The EMR grid of Figure 8a (NUMA + CXL A–D).
pub fn run_emr_grid(scale: Scale) -> GridData {
    run_grid(&emr_cxl_setups(), scale)
}

/// The SPR/EMR comparison grid of Figure 8e.
pub fn run_fig8e_grid(scale: Scale) -> GridData {
    let mut setups = spr_cxl_setups();
    setups.extend(
        emr_cxl_setups()
            .into_iter()
            .filter(|s| s.label.contains("CXL-A") || s.label.contains("CXL-B")),
    );
    run_grid(&setups, scale)
}

/// The 11-setup latency-spectrum grid of Figure 9a.
pub fn run_spectrum_grid(scale: Scale) -> GridData {
    run_grid(&full_latency_spectrum(), scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> GridData {
        run_emr_grid(Scale::Smoke)
    }

    #[test]
    fn fig8a_device_ordering() {
        let g = grid();
        // Fraction of workloads under 50% slowdown: NUMA best, and the
        // ordering D -> A -> B as latency rises (Finding: slowdowns worsen
        // D -> A -> B -> C).
        let under50 = |l: &str| g.slowdown_cdf(l).fraction_at_or_below(50.0);
        let numa = under50("EMR-NUMA");
        let d = under50("EMR-CXL-D");
        let a = under50("EMR-CXL-A");
        let b = under50("EMR-CXL-B");
        assert!(numa >= d - 0.01, "NUMA {numa} vs D {d}");
        // D's bandwidth advantage dominates at population scale, but its
        // slightly higher idle latency (239 vs 214 ns) lets A edge it on
        // purely latency-bound subsets — allow a small inversion.
        assert!(d >= a - 0.10, "D {d} vs A {a}");
        assert!(a >= b - 0.01, "A {a} vs B {b}");
        // Many workloads tolerate CXL. The paper sees 54% under 10%
        // slowdown on CXL-A at full population scale; the smoke subset is
        // deliberately biased toward the paper's memory-hot pinned
        // workloads, so assert only a loose floor here (the Quick-scale
        // integration test asserts the real target).
        assert!(
            g.slowdown_cdf("EMR-CXL-A").fraction_at_or_below(10.0) >= 0.15,
            "too few CXL-A-tolerant workloads"
        );
    }

    #[test]
    fn fig8b_bandwidth_tail_exists_for_low_bw_devices() {
        let g = grid();
        // The worst CXL-B slowdowns far exceed the worst NUMA slowdowns.
        let b_max = g.slowdown_cdf("EMR-CXL-B").max();
        let numa_max = g.slowdown_cdf("EMR-NUMA").max();
        assert!(
            b_max > numa_max * 1.5,
            "CXL-B tail {b_max}% vs NUMA {numa_max}%"
        );
        assert!(
            b_max > 100.0,
            "bandwidth-bound tail should exceed 2x: {b_max}%"
        );
    }

    #[test]
    fn fig11_spa_accuracy() {
        let g = grid();
        for label in ["EMR-NUMA", "EMR-CXL-A", "EMR-CXL-B"] {
            let r = g.fig11(label);
            let (d, b, m) = r.within_pp(5.0);
            assert!(d > 0.9, "{label}: Δs within 5pp for {d}");
            assert!(b > 0.85, "{label}: backend within 5pp for {b}");
            assert!(m > 0.85, "{label}: memory within 5pp for {m}");
        }
    }

    #[test]
    fn fig14_breakdowns_explain_slowdowns() {
        let g = grid();
        let outcomes = g.setup("EMR-CXL-B").expect("setup");
        for o in outcomes {
            let explained = o.breakdown.attributed() / o.breakdown.total.max(0.01);
            assert!(
                o.breakdown.total < 0.05 || explained > 0.7,
                "{}: only {:.0}% of {:.1}% slowdown attributed",
                o.workload,
                explained * 100.0,
                o.breakdown.total * 100.0
            );
        }
    }

    #[test]
    fn fig9a_violins_capture_spread() {
        let g = grid();
        let violins = g.fig9a();
        assert_eq!(violins.len(), 5);
        for (label, v) in &violins {
            assert!(v.max >= v.median, "{label}");
            assert!(!v.density.is_empty(), "{label}");
        }
    }
}
