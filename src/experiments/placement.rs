//! §5.7 performance-tuning use case: Spa-guided memory placement.
//!
//! The paper mitigates `605.mcf`'s slowdown bursts by locating the
//! memory accessed during bursty periods (via Pin + addr2line), finding
//! two performance-critical 2 GB objects, and relocating them to local
//! DRAM — cutting the overall slowdown from 13% to 2%. The simulated
//! equivalent: identify bursty periods with the period-based Spa
//! analysis, attribute them to the hot address region, and re-run with
//! a [`melody_mem::SplitDevice`] that serves that region from local
//! DRAM.

use melody_cpu::Platform;
use melody_mem::{presets, DeviceSpec};
use melody_spa::period::analyze;
use melody_workloads::registry;
use serde::{Deserialize, Serialize};

use crate::runner::{run_pair, run_workload, RunOptions};

use super::Scale;

/// Placement-tuning result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlacementData {
    /// Workload name.
    pub workload: String,
    /// Slowdown with everything on CXL (fraction).
    pub baseline_slowdown: f64,
    /// Slowdown after moving the hot region to local DRAM.
    pub tuned_slowdown: f64,
    /// Bytes relocated to local DRAM.
    pub boundary_bytes: u64,
    /// Number of bursty periods (slowdown > 10%) found by Spa.
    pub bursty_periods: usize,
    /// Total analysed periods.
    pub total_periods: usize,
}

/// Runs the placement-tuning use case on `605.mcf` over CXL-B.
pub fn run(scale: Scale) -> PlacementData {
    let platform = Platform::emr2s();
    let w = registry::by_name("605.mcf").expect("605.mcf");
    let opts = RunOptions {
        mem_refs: scale.mem_refs(),
        sample_interval_ns: Some(5_000),
        ..Default::default()
    };
    let cxl = presets::cxl_b();

    // Step 1: measure and locate bursts (the paper's Spa + Pin step).
    // The baseline and CXL runs are independent; run them side by side.
    let specs = [presets::local_emr(), cxl.clone()];
    let mut runs = crate::campaign::cached_map(
        "workload.run",
        &specs,
        |spec| {
            format!(
                "{{\"platform\":{},\"device\":{},\"workload\":{},\"opts\":{}}}",
                serde_json::to_string(&platform).expect("Platform serializes"),
                spec.canonical_json(),
                w.canonical_json(),
                serde_json::to_string(&opts).expect("opts serialize")
            )
        },
        |spec| run_workload(&platform, spec, &w, &opts),
    );
    let cxl_run = runs.pop().expect("two runs");
    let local_run = runs.pop().expect("two runs");
    let baseline_slowdown = cxl_run.slowdown_vs(&local_run);
    let period = (local_run.counters.instructions / 40).max(1);
    let analysis = analyze(&local_run.samples, &cxl_run.samples, period);
    let bursty = analysis.bursty_periods(0.10);

    // Step 2: the bursty periods belong to the large pointer-chased
    // region; relocate the hottest 3/4 of the working set to local DRAM.
    let ws: u64 = w
        .phases
        .iter()
        .map(|p| p.working_set)
        .max()
        .expect("phases");
    let boundary = ws / 4 * 3;
    let tuned_spec: DeviceSpec = cxl.with_fast_tier(presets::local_emr(), boundary);
    let tuned = run_pair(&platform, &presets::local_emr(), &tuned_spec, &w, &opts);

    PlacementData {
        workload: w.name,
        baseline_slowdown,
        tuned_slowdown: tuned.slowdown,
        boundary_bytes: boundary,
        bursty_periods: bursty.len(),
        total_periods: analysis.periods.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_recovers_most_of_the_slowdown() {
        let d = run(Scale::Smoke);
        assert!(
            d.baseline_slowdown > 0.10,
            "mcf on CXL-B should slow >10%: {}",
            d.baseline_slowdown
        );
        assert!(d.bursty_periods > 0, "Spa should find bursty periods");
        // Paper: 13% -> 2%. Shape target: at least a 2.5x reduction.
        assert!(
            d.tuned_slowdown < d.baseline_slowdown / 2.5,
            "placement should cut the slowdown: {} -> {}",
            d.baseline_slowdown,
            d.tuned_slowdown
        );
    }
}
