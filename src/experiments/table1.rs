//! Table 1: testbed idle latency and peak bandwidth, local and remote.

use melody_mem::{presets, probe, DeviceSpec};
use serde::{Deserialize, Serialize};

use crate::report::TableData;

use super::Scale;

/// One Table 1 row, measured on the simulated testbed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Configuration name.
    pub name: String,
    /// Measured idle latency (local attach), ns.
    pub local_lat_ns: f64,
    /// Measured peak read bandwidth (local attach), GB/s.
    pub local_bw_gbps: f64,
    /// Measured idle latency behind a NUMA hop, ns (devices only).
    pub remote_lat_ns: Option<f64>,
    /// Measured peak read bandwidth behind a NUMA hop, GB/s.
    pub remote_bw_gbps: Option<f64>,
    /// The paper's Table 1 reference latency, ns.
    pub paper_lat_ns: f64,
}

/// Table 1 measurement result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Data {
    /// Rows in Table 1 order.
    pub rows: Vec<Table1Row>,
}

impl Table1Data {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = TableData::new(
            "Table 1: testbed latency/bandwidth (measured on simulated devices)",
            &[
                "Config",
                "Local lat (ns)",
                "Local BW (GB/s)",
                "Remote lat (ns)",
                "Remote BW (GB/s)",
                "Paper lat (ns)",
            ],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.name.clone(),
                format!("{:.0}", r.local_lat_ns),
                format!("{:.1}", r.local_bw_gbps),
                r.remote_lat_ns
                    .map(|v| format!("{v:.0}"))
                    .unwrap_or_else(|| "-".into()),
                r.remote_bw_gbps
                    .map(|v| format!("{v:.1}"))
                    .unwrap_or_else(|| "-".into()),
                format!("{:.0}", r.paper_lat_ns),
            ]);
        }
        t.render()
    }
}

fn measure(spec: &DeviceSpec, scale: Scale, outstanding: usize) -> (f64, f64) {
    let mut dev = spec.build(0x7AB1E);
    let lat = probe::idle_latency_ns(dev.as_mut(), (scale.mio_accesses() / 10) as usize);
    let mut dev = spec.build(0x7AB1E);
    let bw = probe::peak_bandwidth_gbps(dev.as_mut(), 1.0, scale.mlc_requests(), outstanding);
    (lat, bw)
}

/// Regenerates Table 1. The nine rows are independent probe pairs, so
/// they fan out over the worker pool ([`crate::exec::jobs`]).
pub fn run(scale: Scale) -> Table1Data {
    // Server rows (local DRAM + cross-socket NUMA, 768 outstanding),
    // then CXL device rows (local attach + one NUMA hop, 256).
    let mut cells: Vec<(String, DeviceSpec, DeviceSpec, f64, usize)> = vec![
        (
            "SPR2S".into(),
            presets::local_spr(),
            presets::numa_spr(),
            114.0,
            768,
        ),
        (
            "EMR2S".into(),
            presets::local_emr(),
            presets::numa_emr(),
            111.0,
            768,
        ),
        (
            "EMR2S'".into(),
            presets::local_emr_prime(),
            presets::numa_emr_prime(),
            117.0,
            768,
        ),
        (
            "SKX2S".into(),
            presets::local_skx2s(),
            presets::skx_140(),
            90.0,
            768,
        ),
        (
            "SKX8S".into(),
            presets::local_skx8s(),
            presets::skx8s_410(),
            81.0,
            768,
        ),
    ];
    for (spec, paper) in [
        (presets::cxl_a(), 214.0),
        (presets::cxl_b(), 271.0),
        (presets::cxl_c(), 394.0),
        (presets::cxl_d(), 239.0),
    ] {
        let remote = spec.clone().with_numa_hop();
        cells.push((spec.name(), spec, remote, paper, 256));
    }
    let rows = crate::campaign::cached_map(
        "table1.row",
        &cells,
        |(name, local, remote, paper, outstanding)| {
            format!(
                "{{\"name\":{name:?},\"local\":{},\"remote\":{},\"paper\":{paper},\
                 \"outstanding\":{outstanding},\"probe_accesses\":{},\"requests\":{}}}",
                local.canonical_json(),
                remote.canonical_json(),
                scale.mio_accesses() / 10,
                scale.mlc_requests()
            )
        },
        |(name, local, remote, paper, outstanding)| {
            let (llat, lbw) = measure(local, scale, *outstanding);
            let (rlat, rbw) = measure(remote, scale, *outstanding);
            Table1Row {
                name: name.clone(),
                local_lat_ns: llat,
                local_bw_gbps: lbw,
                remote_lat_ns: Some(rlat),
                remote_bw_gbps: Some(rbw),
                paper_lat_ns: *paper,
            }
        },
    );
    Table1Data { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_holds_at_smoke_scale() {
        let t = run(Scale::Smoke);
        assert_eq!(t.rows.len(), 9);
        for r in &t.rows {
            assert!(
                (r.local_lat_ns - r.paper_lat_ns).abs() / r.paper_lat_ns < 0.15,
                "{}: measured {} vs paper {}",
                r.name,
                r.local_lat_ns,
                r.paper_lat_ns
            );
            // Remote always slower than local.
            assert!(r.remote_lat_ns.expect("remote") > r.local_lat_ns);
        }
        let render = t.render();
        assert!(render.contains("CXL-A"));
        assert!(render.contains("SKX8S"));
    }
}
