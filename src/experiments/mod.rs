//! Per-figure/table experiment harnesses.
//!
//! One module per evaluation artefact of the paper; each exposes a
//! `run(scale)` returning serde-serialisable data with a `render()`
//! producing the paper-style rows/series. The experiment↔module map
//! lives in `DESIGN.md`; the measured-vs-paper comparison in
//! `EXPERIMENTS.md`.

pub mod ablation;
pub mod degraded;
pub mod device_curves;
pub mod fig07;
pub mod fig08cd;
pub mod fig09b;
pub mod fig16;
pub mod grid;
pub mod placement;
pub mod predict;
pub mod table1;
pub mod tails;
pub mod tiering;

use serde::{Deserialize, Serialize};

/// Experiment scale: trades fidelity for runtime.
///
/// - `Smoke`: seconds; unit/integration tests.
/// - `Quick`: tens of seconds; Criterion benches and iteration.
/// - `Full`: minutes; the numbers recorded in `EXPERIMENTS.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Minimal: a handful of workloads, short streams.
    Smoke,
    /// Representative subset.
    Quick,
    /// The paper-scale configuration (all 265 workloads).
    Full,
}

impl Scale {
    /// Memory references per workload run.
    pub fn mem_refs(self) -> u64 {
        match self {
            Scale::Smoke => 8_000,
            Scale::Quick => 30_000,
            Scale::Full => 120_000,
        }
    }

    /// MIO chase accesses per measurement.
    pub fn mio_accesses(self) -> u64 {
        match self {
            Scale::Smoke => 15_000,
            Scale::Quick => 50_000,
            Scale::Full => 200_000,
        }
    }

    /// MLC requests per sweep point.
    pub fn mlc_requests(self) -> u64 {
        match self {
            Scale::Smoke => 10_000,
            Scale::Quick => 30_000,
            Scale::Full => 80_000,
        }
    }

    /// Number of workloads drawn from the registry for population
    /// experiments (always includes the pinned named workloads).
    pub fn grid_workloads(self) -> usize {
        match self {
            Scale::Smoke => 16,
            Scale::Quick => 64,
            Scale::Full => 265,
        }
    }

    /// Selects a deterministic, class-spanning workload subset.
    pub fn select_workloads(self) -> Vec<melody_workloads::WorkloadSpec> {
        let all = melody_workloads::registry::all();
        let n = self.grid_workloads().min(all.len());
        if n == all.len() {
            return all;
        }
        // Evenly strided subset keeps the suite mix representative;
        // pinned paper workloads are forced in.
        let pinned = [
            "605.mcf",
            "520.omnetpp",
            "519.lbm",
            "603.bwaves",
            "503.bwaves",
            "649.fotonik3d",
            "602.gcc",
            "631.deepsjeng",
            "redis.ycsb-C",
        ];
        let mut out: Vec<melody_workloads::WorkloadSpec> = pinned
            .iter()
            .filter_map(|p| all.iter().find(|w| &w.name == p).cloned())
            .collect();
        let stride = all.len() as f64 / n as f64;
        let mut cursor = 0.0f64;
        while out.len() < n && (cursor as usize) < all.len() {
            let cand = &all[cursor as usize];
            if !out.iter().any(|w| w.name == cand.name) {
                out.push(cand.clone());
            }
            cursor += stride;
        }
        // Top up from the front if stride collisions left us short.
        let mut i = 0;
        while out.len() < n && i < all.len() {
            if !out.iter().any(|w| w.name == all[i].name) {
                out.push(all[i].clone());
            }
            i += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_order_sanely() {
        assert!(Scale::Smoke.mem_refs() < Scale::Quick.mem_refs());
        assert!(Scale::Quick.mem_refs() < Scale::Full.mem_refs());
        assert_eq!(Scale::Full.grid_workloads(), 265);
    }

    #[test]
    fn selection_includes_pinned_workloads() {
        let sel = Scale::Smoke.select_workloads();
        assert_eq!(sel.len(), 16);
        for p in ["605.mcf", "519.lbm", "603.bwaves"] {
            assert!(sel.iter().any(|w| w.name == p), "missing pinned {p}");
        }
    }

    #[test]
    fn full_selection_is_everything() {
        assert_eq!(Scale::Full.select_workloads().len(), 265);
    }
}
