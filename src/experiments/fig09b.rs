//! Figure 9b: YCSB A–F slowdowns on Redis and VoltDB under NUMA, CXL-A
//! and CXL-B — cloud workloads' super-linear sensitivity to latency.

use melody_cpu::Platform;
use melody_mem::presets;
use melody_workloads::registry::ycsb;
use melody_workloads::Suite;
use serde::{Deserialize, Serialize};

use crate::report::TableData;
use crate::runner::{run_population_par, RunOptions};

use super::Scale;

/// One bar of Figure 9b.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct YcsbBar {
    /// Backend (`"redis"` / `"voltdb"`).
    pub backend: String,
    /// YCSB mix (A–F).
    pub mix: String,
    /// Device label.
    pub device: String,
    /// Slowdown percent.
    pub slowdown_pct: f64,
}

/// Figure 9b data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig09bData {
    /// All bars.
    pub bars: Vec<YcsbBar>,
}

impl Fig09bData {
    /// The bar for (backend, mix, device).
    pub fn bar(&self, backend: &str, mix: &str, device: &str) -> Option<f64> {
        self.bars
            .iter()
            .find(|b| b.backend == backend && b.mix == mix && b.device == device)
            .map(|b| b.slowdown_pct)
    }

    /// Renders as a table.
    pub fn render(&self) -> String {
        let mut t = TableData::new(
            "fig09b: YCSB slowdowns (%)",
            &["Backend", "Mix", "NUMA", "CXL-A", "CXL-B"],
        );
        for backend in ["redis", "voltdb"] {
            for mix in ["A", "B", "C", "D", "E", "F"] {
                let get = |d: &str| {
                    self.bar(backend, mix, d)
                        .map(|v| format!("{v:.1}"))
                        .unwrap_or_else(|| "-".into())
                };
                t.push_row(vec![
                    backend.into(),
                    mix.into(),
                    get("EMR-NUMA"),
                    get("EMR-CXL-A"),
                    get("EMR-CXL-B"),
                ]);
            }
        }
        t.render()
    }
}

/// Runs Figure 9b.
pub fn run(scale: Scale) -> Fig09bData {
    let platform = Platform::emr2s();
    let opts = RunOptions {
        mem_refs: scale.mem_refs(),
        ..Default::default()
    };
    let devices = [
        ("EMR-NUMA", presets::numa_emr()),
        ("EMR-CXL-A", presets::cxl_a()),
        ("EMR-CXL-B", presets::cxl_b()),
    ];
    let mut bars = Vec::new();
    for suite in [Suite::Redis, Suite::Voltdb] {
        let workloads = ycsb(suite);
        let backend = if suite == Suite::Redis {
            "redis"
        } else {
            "voltdb"
        };
        for (dev_label, spec) in &devices {
            let outcomes =
                run_population_par(&platform, &presets::local_emr(), spec, &workloads, &opts);
            for o in outcomes {
                let mix = o.workload.rsplit('-').next().unwrap_or("?").to_string();
                bars.push(YcsbBar {
                    backend: backend.into(),
                    mix,
                    device: dev_label.to_string(),
                    slowdown_pct: o.slowdown * 100.0,
                });
            }
        }
    }
    Fig09bData { bars }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ycsb_slowdowns_grow_superlinearly_with_latency() {
        let d = run(Scale::Smoke);
        assert_eq!(d.bars.len(), 2 * 3 * 6);
        // For each (backend, mix): NUMA < CXL-A < CXL-B, and the increase
        // from NUMA->CXL-B outpaces the latency ratio (271/193 = 1.40).
        let mut super_linear = 0;
        let mut total = 0;
        for backend in ["redis", "voltdb"] {
            for mix in ["A", "B", "C", "D", "F"] {
                let numa = d.bar(backend, mix, "EMR-NUMA").expect("bar");
                let a = d.bar(backend, mix, "EMR-CXL-A").expect("bar");
                let b = d.bar(backend, mix, "EMR-CXL-B").expect("bar");
                assert!(numa <= a + 2.0, "{backend}-{mix}: NUMA {numa} vs A {a}");
                assert!(a <= b + 2.0, "{backend}-{mix}: A {a} vs B {b}");
                total += 1;
                if b > numa * 1.40 {
                    super_linear += 1;
                }
            }
        }
        assert!(
            super_linear * 2 > total,
            "most mixes should scale super-linearly: {super_linear}/{total}"
        );
    }
}
