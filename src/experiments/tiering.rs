//! Online tiering-policy comparison: per-policy slowdown vs all-local
//! on a phased hot/cold workload over CXL.
//!
//! The paper's placement tuning (§5.7) is *offline*: profile, find the
//! hot object, pin it to local DRAM, re-run. This experiment asks what
//! an *online* page-migration layer recovers without a profiling pass:
//! every [`melody_mem::PolicyKind`] runs the same phased workload over
//! a [`melody_mem::TieredDevice`] whose fast tier is the platform's
//! local DRAM and whose slow tier is a CXL expander, and each policy's
//! slowdown vs the all-local baseline is reported next to the static
//! (all-CXL) placement it must beat and the all-local bound it cannot.
//! Migration traffic is costed on the simulated link — each migrated
//! page is a real 4 KiB read+write request stream competing with demand
//! traffic — so a policy that migrates too eagerly pays for it.

use melody_cpu::Platform;
use melody_mem::{presets, DeviceSpec, PolicyKind, TieringConfig, POLICIES};
use melody_workloads::{Pattern, Phase, Suite, WorkloadSpec};
use serde::{Deserialize, Serialize};

use crate::report::TableData;
use crate::runner::{run_pair, RunOptions};

use super::Scale;

/// The phased hot/cold workload the comparison runs: two equal phases
/// whose hot set grows mid-run (24 MiB → 48 MiB at the base of a
/// 192 MiB working set), so a competent tracker must keep promoting
/// after the phase change. Both hot sets exceed the skx2s L3
/// (13.8 MiB), so hot misses genuinely reach the device.
pub fn phased_workload() -> WorkloadSpec {
    let mut w = WorkloadSpec::single(
        "tiering-phased",
        Suite::CloudSuite,
        Phase {
            weight: 0.5,
            uops_per_mem: 4.0,
            dependence: 0.6,
            working_set: 192 << 20,
            seq_frac: 0.05,
            pattern: Pattern::Skewed {
                hot_frac: 0.95,
                hot_bytes: 24 << 20,
            },
            store_frac: 0.10,
        },
    );
    w.phases.push(Phase {
        pattern: Pattern::Skewed {
            hot_frac: 0.95,
            hot_bytes: 48 << 20,
        },
        ..w.phases[0]
    });
    w
}

/// The tiering config the comparison (and the differential test suite)
/// uses: default 4 KiB pages, but longer epochs (enough touches land in
/// each for hotness and CLOCK's two-epoch filter at smoke-scale
/// reference counts), a single-touch hotness threshold, and a 12 GB/s
/// migration budget — roughly half the CXL-B link, so copy bursts pace
/// onto the link instead of piling up behind it.
pub fn tiering_config(policy: PolicyKind) -> TieringConfig {
    let mut tc = TieringConfig::new(policy);
    tc.epoch_ns = 200_000;
    tc.hot_touches = 1;
    tc.migrate_budget_gbps = 12.0;
    tc
}

/// One policy's outcome on the phased workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TieringRow {
    /// Policy keyword (see [`POLICIES`]).
    pub policy: String,
    /// Slowdown vs the all-local baseline (fraction).
    pub slowdown: f64,
    /// Target demand-load p99.9 latency, ns.
    pub target_p999_ns: u64,
    /// Pages migrated (0 for `static`; from `tier.migrations_total`).
    pub migrations: u64,
    /// Bytes migrated (from `tier.migrated_bytes`).
    pub migrated_bytes: u64,
}

/// The tiering-policy comparison result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TieringData {
    /// Platform keyword the comparison ran on.
    pub platform: String,
    /// Slow-tier device keyword.
    pub device: String,
    /// Workload name.
    pub workload: String,
    /// One row per policy, in [`POLICIES`] order.
    pub rows: Vec<TieringRow>,
}

impl TieringData {
    /// The row for `policy`, if present.
    pub fn row(&self, policy: &str) -> Option<&TieringRow> {
        self.rows.iter().find(|r| r.policy == policy)
    }

    /// Renders the per-policy table.
    pub fn render(&self) -> String {
        let mut t = TableData::new(
            format!(
                "tiering: {} on {} over {} (slowdown vs all-local)",
                self.workload, self.platform, self.device
            ),
            &["Policy", "Slowdown", "p99.9(ns)", "Migrations", "MiB moved"],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.policy.clone(),
                format!("{:.1}%", r.slowdown * 100.0),
                r.target_p999_ns.to_string(),
                r.migrations.to_string(),
                format!("{:.1}", r.migrated_bytes as f64 / (1 << 20) as f64),
            ]);
        }
        t.render()
    }
}

/// Runs the per-policy comparison on skx2s (the smallest L3, so the
/// phased hot sets overflow cache) over CXL-B. Every policy sees the
/// identical slot stream; tier telemetry is captured privately per
/// policy so migration counts land in the rows whatever the process
/// telemetry mode is.
pub fn run(scale: Scale) -> TieringData {
    let platform = Platform::skx2s();
    let local = crate::campaign::local_for_platform(&platform);
    let cxl = presets::cxl_b();
    let w = phased_workload();
    let opts = RunOptions {
        mem_refs: scale.mem_refs() * 8,
        ..Default::default()
    };
    let cells: Vec<&str> = POLICIES.to_vec();
    let rows = crate::exec::parallel_map(&cells, |name| {
        let kind = PolicyKind::parse(name).expect("registry policy parses");
        let target: DeviceSpec = cxl
            .clone()
            .with_tiering(tiering_config(kind), local.clone());
        let (pair, _events, _dropped, metrics) =
            crate::exec::traced(|| run_pair(&platform, &local, &target, &w, &opts));
        let counter = |key: &str| metrics.counters.get(key).copied().unwrap_or(0);
        TieringRow {
            policy: name.to_string(),
            slowdown: pair.slowdown,
            target_p999_ns: pair.target.demand_lat_hist.percentile(99.9),
            migrations: counter("tier.migrations_total"),
            migrated_bytes: counter("tier.migrated_bytes"),
        }
    });
    TieringData {
        platform: "skx2s".to_string(),
        device: "cxl-b".to_string(),
        workload: w.name,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_policies_beat_static_and_never_local() {
        let d = run(Scale::Smoke);
        let staticr = d.row("static").expect("static row");
        assert_eq!(staticr.migrations, 0, "static never migrates");
        assert!(
            staticr.slowdown > 0.10,
            "phased workload on CXL-B should slow >10%: {}",
            staticr.slowdown
        );
        for name in ["lru-hotness", "clock"] {
            let r = d.row(name).expect("adaptive row");
            assert!(r.migrations > 0, "{name} should migrate");
            assert_eq!(r.migrated_bytes, r.migrations * 4096, "{name} page math");
            assert!(
                r.slowdown < staticr.slowdown * 0.75,
                "{name} should recover >25% of static slowdown: {} vs {}",
                r.slowdown,
                staticr.slowdown
            );
            assert!(
                r.slowdown > -0.005,
                "{name} cannot beat all-local: {}",
                r.slowdown
            );
        }
    }
}
