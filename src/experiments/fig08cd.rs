//! Figures 8c, 8d and 8f: the CXL+NUMA anomaly and the closing
//! CXL-vs-NUMA gap.
//!
//! - Figure 8c: workload slowdowns under CXL-A+NUMA are *worse* than
//!   under 2-hop NUMA (410 ns) despite better nominal latency/bandwidth.
//! - Figure 8d: `520.omnetpp`'s latency CDF under CXL+NUMA grows a long
//!   tail that shrinks as workload intensity is reduced to 1/2 and 1/4 —
//!   direct evidence that tail latency, not average latency, causes its
//!   2.9× slowdown.
//! - Figure 8f: hardware-interleaving two CXL-D devices doubles bandwidth
//!   and largely closes the gap to NUMA for SPEC CPU 2017.

use melody_cpu::Platform;
use melody_mem::presets;
use melody_stats::Cdf;
use melody_workloads::{registry, Suite, WorkloadSpec};
use serde::{Deserialize, Serialize};

use crate::report::Series;
use crate::runner::{run_pair, run_population_par, RunOptions};

use super::Scale;

/// Figure 8c data: slowdown CDFs for CXL-A, 410 ns NUMA, and CXL-A+NUMA.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig08cData {
    /// `(label, slowdown-% CDF points)`.
    pub cdfs: Vec<Series>,
}

/// Runs Figure 8c over a workload subset (the paper uses 121 workloads).
pub fn fig08c(scale: Scale) -> Fig08cData {
    let workloads: Vec<WorkloadSpec> = scale
        .select_workloads()
        .into_iter()
        .take(121.min(scale.grid_workloads()))
        .collect();
    let opts = RunOptions {
        mem_refs: scale.mem_refs(),
        ..Default::default()
    };
    let configs = [
        (
            "CXL-A",
            Platform::emr2s(),
            presets::local_emr(),
            presets::cxl_a(),
        ),
        (
            "SKX8S-410ns",
            Platform::skx8s(),
            presets::local_skx8s(),
            presets::skx8s_410(),
        ),
        (
            "CXL-A+NUMA",
            Platform::emr2s(),
            presets::local_emr(),
            presets::cxl_a().with_numa_hop(),
        ),
    ];
    let cdfs = configs
        .into_iter()
        .map(|(label, platform, local, target)| {
            let outcomes = run_population_par(&platform, &local, &target, &workloads, &opts);
            let cdf = Cdf::from_samples(outcomes.iter().map(|o| o.slowdown * 100.0));
            Series::new(label, cdf.points())
        })
        .collect();
    Fig08cData { cdfs }
}

/// Figure 8d data: `520.omnetpp` memory-latency CDFs and slowdowns under
/// load scaling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig08dData {
    /// `(label, latency-ns CDF points)` for Local, CXL-A, CXL-A+NUMA at
    /// full, 1/2 and 1/4 intensity.
    pub cdfs: Vec<Series>,
    /// `(label, slowdown %)` for the CXL-A+NUMA intensities.
    pub slowdowns: Vec<(String, f64)>,
}

fn scaled_omnetpp(intensity_div: f64) -> WorkloadSpec {
    let mut w = registry::by_name("520.omnetpp").expect("520.omnetpp");
    w.name = format!("520.omnetpp/{intensity_div}");
    for p in &mut w.phases {
        // Reducing simulated-LAN count lowers memory pressure per unit
        // work: more compute between references.
        p.uops_per_mem *= intensity_div;
    }
    w
}

/// Runs Figure 8d.
pub fn fig08d(scale: Scale) -> Fig08dData {
    let platform = Platform::emr2s();
    let opts = RunOptions {
        mem_refs: scale.mem_refs(),
        ..Default::default()
    };
    let mut cdfs = Vec::new();
    let mut slowdowns = Vec::new();

    let full = registry::by_name("520.omnetpp").expect("omnetpp");
    for (label, spec) in [("Local", presets::local_emr()), ("CXL-A", presets::cxl_a())] {
        let o = run_pair(&platform, &presets::local_emr(), &spec, &full, &opts);
        cdfs.push(Series::new(
            label,
            o.target
                .demand_lat_hist
                .cdf_points()
                .into_iter()
                .map(|(x, y)| (x as f64, y))
                .collect(),
        ));
        if label == "CXL-A" {
            slowdowns.push((label.to_string(), o.slowdown * 100.0));
        }
    }
    for (label, div) in [
        ("CXL-A+NUMA", 1.0),
        ("CXL-A+NUMA 1/2 load", 2.0),
        ("CXL-A+NUMA 1/4 load", 4.0),
    ] {
        let w = scaled_omnetpp(div);
        let o = run_pair(
            &platform,
            &presets::local_emr(),
            &presets::cxl_a().with_numa_hop(),
            &w,
            &opts,
        );
        cdfs.push(Series::new(
            label,
            o.target
                .demand_lat_hist
                .cdf_points()
                .into_iter()
                .map(|(x, y)| (x as f64, y))
                .collect(),
        ));
        slowdowns.push((label.to_string(), o.slowdown * 100.0));
    }
    Fig08dData { cdfs, slowdowns }
}

/// Figure 8f data: SPEC slowdown CDFs for NUMA, CXL-D ×1 and CXL-D ×2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig08fData {
    /// `(label, slowdown-% CDF points)`.
    pub cdfs: Vec<Series>,
}

/// Runs Figure 8f on the SPEC CPU 2017 suite (EMR2S' host).
pub fn fig08f(scale: Scale) -> Fig08fData {
    let mut workloads = registry::by_suite(Suite::SpecCpu2017);
    if scale != Scale::Full {
        let keep = (scale.grid_workloads() / 2).max(8);
        let stride = (workloads.len() / keep).max(1);
        workloads = workloads.into_iter().step_by(stride).collect();
    }
    let platform = Platform::emr2s_prime();
    let opts = RunOptions {
        mem_refs: scale.mem_refs(),
        ..Default::default()
    };
    let configs = [
        ("NUMA*", presets::numa_emr_prime()),
        ("CXL-D x1", presets::cxl_d()),
        ("CXL-D x2", presets::cxl_d().interleaved(2)),
    ];
    let cdfs = configs
        .into_iter()
        .map(|(label, target)| {
            let outcomes = run_population_par(
                &platform,
                &presets::local_emr_prime(),
                &target,
                &workloads,
                &opts,
            );
            let cdf = Cdf::from_samples(outcomes.iter().map(|o| o.slowdown * 100.0));
            Series::new(label, cdf.points())
        })
        .collect();
    Fig08fData { cdfs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8d_tail_and_load_scaling() {
        let d = fig08d(Scale::Smoke);
        let sd = |label: &str| {
            d.slowdowns
                .iter()
                .find(|(l, _)| l == label)
                .unwrap_or_else(|| panic!("missing {label}"))
                .1
        };
        // omnetpp tolerates CXL-A but collapses under CXL-A+NUMA...
        assert!(sd("CXL-A") < 25.0, "CXL-A {}", sd("CXL-A"));
        assert!(
            sd("CXL-A+NUMA") > 3.0 * sd("CXL-A").max(1.0),
            "CXL+NUMA {} vs CXL {}",
            sd("CXL-A+NUMA"),
            sd("CXL-A")
        );
        // ...and reducing intensity reduces the slowdown (tail causality).
        assert!(
            sd("CXL-A+NUMA 1/4 load") < sd("CXL-A+NUMA"),
            "1/4 load {} vs full {}",
            sd("CXL-A+NUMA 1/4 load"),
            sd("CXL-A+NUMA")
        );
    }

    #[test]
    fn fig8f_interleaving_closes_the_gap() {
        let d = fig08f(Scale::Smoke);
        let worst = |label: &str| {
            d.cdfs
                .iter()
                .find(|s| s.name == label)
                .expect("series")
                .points
                .iter()
                .map(|p| p.0)
                .fold(0.0, f64::max)
        };
        // Doubling CXL-D bandwidth cuts the worst-case slowdown.
        assert!(
            worst("CXL-D x2") < worst("CXL-D x1"),
            "x2 {} vs x1 {}",
            worst("CXL-D x2"),
            worst("CXL-D x1")
        );
    }
}
