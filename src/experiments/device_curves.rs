//! Latency–bandwidth curves: Figure 1 (the sub-µs spectrum), Figure 3a
//! (loaded latency under read traffic) and Figure 5 (read/write-ratio
//! sweeps).

use melody_mem::{presets, DeviceSpec};
use melody_workloads::mlc::{self, MlcConfig};
use serde::{Deserialize, Serialize};

use crate::report::Series;

use super::Scale;

/// A set of latency–bandwidth curves, one per memory configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CurveSet {
    /// Figure identifier (e.g. `"fig3a"`).
    pub figure: String,
    /// One `(bandwidth GB/s, mean latency ns)` series per configuration.
    pub curves: Vec<Series>,
}

impl CurveSet {
    /// Renders all series.
    pub fn render(&self) -> String {
        let mut out = format!("== {} ==\n", self.figure);
        for c in &self.curves {
            out.push_str(&c.render());
            out.push('\n');
        }
        out
    }

    /// The curve with the given name.
    pub fn curve(&self, name: &str) -> Option<&Series> {
        self.curves.iter().find(|c| c.name == name)
    }
}

/// Cache-key config for one [`sweep`] call (the delay ladder is the
/// standard one, so spec + read fraction + request count pin it down).
fn sweep_key(spec: &DeviceSpec, read_frac: f64, scale: Scale) -> String {
    format!(
        "{{\"spec\":{},\"read_frac\":{read_frac},\"requests\":{}}}",
        spec.canonical_json(),
        scale.mlc_requests()
    )
}

fn sweep(spec: &DeviceSpec, read_frac: f64, scale: Scale) -> Series {
    let delays = mlc::standard_delays();
    let pts = mlc::latency_bandwidth_curve(spec, &delays, read_frac, scale.mlc_requests());
    let mut points: Vec<(f64, f64)> = pts
        .iter()
        .map(|p| (p.bandwidth_gbps, p.mean_latency_ns()))
        .collect();
    points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    Series::new(spec.name(), points)
}

/// Figure 1: the latency–bandwidth spectrum across local DRAM, NUMA, the
/// four CXL devices, CXL+NUMA, CXL+Switch, and CXL over multiple hops.
pub fn fig01(scale: Scale) -> CurveSet {
    let mut configs: Vec<(String, DeviceSpec)> = vec![
        ("Socket-local DRAM".into(), presets::local_emr()),
        ("NUMA".into(), presets::numa_emr()),
    ];
    for d in presets::all_cxl() {
        configs.push((d.name(), d));
    }
    configs.push(("CXL+NUMA".into(), presets::cxl_a().with_numa_hop()));
    configs.push(("CXL+Switch".into(), presets::cxl_d().with_switch_hop()));
    configs.push((
        "CXL+multi-hops".into(),
        presets::cxl_d().with_switch_hop().with_switch_hop(),
    ));
    let curves = crate::campaign::cached_map(
        "mlc.curve",
        &configs,
        |(name, spec)| {
            format!(
                "{{\"label\":{name:?},\"cfg\":{}}}",
                sweep_key(spec, 1.0, scale)
            )
        },
        |(name, spec)| {
            let mut s = sweep(spec, 1.0, scale);
            s.name = name.clone();
            s
        },
    );
    CurveSet {
        figure: "fig01: CXL latency/bandwidth spectrum".into(),
        curves,
    }
}

/// Figure 3a: loaded latency vs bandwidth for local, NUMA and CXL A–D
/// under 31 read-traffic threads with injected delays of 0–20 K cycles.
pub fn fig03a(scale: Scale) -> CurveSet {
    let configs = [
        presets::local_emr(),
        presets::numa_emr(),
        presets::cxl_a(),
        presets::cxl_b(),
        presets::cxl_c(),
        presets::cxl_d(),
    ];
    CurveSet {
        figure: "fig03a: loaded latency vs bandwidth".into(),
        curves: crate::campaign::cached_map(
            "mlc.curve",
            &configs,
            |s| format!("{{\"label\":null,\"cfg\":{}}}", sweep_key(s, 1.0, scale)),
            |s| sweep(s, 1.0, scale),
        ),
    }
}

/// One read/write-ratio panel of Figure 5.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig05Panel {
    /// Device name.
    pub device: String,
    /// One curve per R/W ratio, labelled `"R:W"`.
    pub curves: Vec<Series>,
    /// Peak total bandwidth per ratio label.
    pub peaks: Vec<(String, f64)>,
}

/// Figure 5: latency–bandwidth curves under read/write ratios
/// 1:0, 4:1, 3:1, 2:1, 3:2, 1:1, for all six memory configurations.
pub fn fig05(scale: Scale) -> Vec<Fig05Panel> {
    let ratios: [(&str, f64); 6] = [
        ("1:0", 1.0),
        ("4:1", 0.8),
        ("3:1", 0.75),
        ("2:1", 2.0 / 3.0),
        ("3:2", 0.6),
        ("1:1", 0.5),
    ];
    let configs = [
        presets::local_emr(),
        presets::numa_emr(),
        presets::cxl_a(),
        presets::cxl_b(),
        presets::cxl_c(),
        presets::cxl_d(),
    ];
    // Flatten (config × ratio) into one work list: 36 sweeps saturate
    // the worker pool where 6 per-config tasks would not.
    let flat: Vec<(&DeviceSpec, (&str, f64))> = configs
        .iter()
        .flat_map(|spec| ratios.iter().map(move |&r| (spec, r)))
        .collect();
    let sweeps = crate::campaign::cached_map(
        "mlc.curve",
        &flat,
        |(spec, (label, frac))| {
            format!(
                "{{\"label\":{label:?},\"cfg\":{}}}",
                sweep_key(spec, *frac, scale)
            )
        },
        |(spec, (label, frac))| {
            let mut s = sweep(spec, *frac, scale);
            s.name = label.to_string();
            s
        },
    );
    configs
        .iter()
        .zip(sweeps.chunks_exact(ratios.len()))
        .map(|(spec, chunk)| {
            let peaks = chunk
                .iter()
                .map(|s| {
                    (
                        s.name.clone(),
                        s.points.iter().map(|p| p.0).fold(0.0, f64::max),
                    )
                })
                .collect();
            Fig05Panel {
                device: spec.name(),
                curves: chunk.to_vec(),
                peaks,
            }
        })
        .collect()
}

/// The ratio label with the highest peak bandwidth in a Figure 5 panel.
pub fn peak_ratio(panel: &Fig05Panel) -> &str {
    panel
        .peaks
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .map(|(l, _)| l.as_str())
        .unwrap_or("?")
}

/// A single loaded point at a fixed delay (used by ablations).
pub fn loaded_point(spec: &DeviceSpec, delay_cycles: u64, scale: Scale) -> (f64, f64) {
    let p = mlc::loaded_latency(
        spec,
        &MlcConfig {
            delay_cycles,
            total_requests: scale.mlc_requests(),
            ..MlcConfig::default()
        },
    );
    (p.bandwidth_gbps, p.mean_latency_ns())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3a_curves_have_expected_shape() {
        let cs = fig03a(Scale::Smoke);
        assert_eq!(cs.curves.len(), 6);
        let local = cs.curve("Local").expect("local curve");
        let cxl_c = cs.curve("CXL-C").expect("cxl-c curve");
        // Local reaches far more bandwidth than CXL-C.
        let local_max = local.points.iter().map(|p| p.0).fold(0.0, f64::max);
        let c_max = cxl_c.points.iter().map(|p| p.0).fold(0.0, f64::max);
        assert!(local_max > 4.0 * c_max, "local {local_max} vs C {c_max}");
        // Latency at the saturated end exceeds the idle end.
        let first = local.points.first().expect("points").1;
        let last = local.points.last().expect("points").1;
        assert!(
            last > first,
            "loaded latency should rise: {first} -> {last}"
        );
    }

    #[test]
    fn fig5_duplex_devices_peak_mixed() {
        let panels = fig05(Scale::Smoke);
        let by_name = |n: &str| panels.iter().find(|p| p.device == n).expect("panel");
        // ASIC CXL peaks at a mixed ratio; local DRAM peaks read-only.
        assert_ne!(peak_ratio(by_name("CXL-A")), "1:0");
        assert_ne!(peak_ratio(by_name("CXL-D")), "1:0");
        assert_eq!(peak_ratio(by_name("Local")), "1:0");
        // The FPGA device behaves like DDR: read-only is its best case.
        assert_eq!(peak_ratio(by_name("CXL-C")), "1:0");
    }

    #[test]
    fn fig1_spectrum_orders_configs() {
        let cs = fig01(Scale::Smoke);
        let idle = |name: &str| {
            cs.curve(name)
                .expect("curve")
                .points
                .first()
                .expect("points")
                .1
        };
        assert!(idle("Socket-local DRAM") < idle("NUMA"));
        assert!(idle("NUMA") < idle("CXL-A"));
        assert!(idle("CXL-A") < idle("CXL+Switch"));
        assert!(idle("CXL+Switch") < idle("CXL+multi-hops"));
    }
}
