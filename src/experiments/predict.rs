//! Spa-based performance prediction (§5.7 / technical report):
//! measure each workload on *one* CXL device, then predict its slowdown
//! on the other devices from their Table 1 latency/bandwidth specs
//! alone — and score the predictions against ground truth.

use melody_cpu::Platform;
use melody_mem::presets;
use melody_spa::predict::{
    evaluate, predict_slowdown, DeviceProfile, Measurement, PredictionQuality,
};
use serde::{Deserialize, Serialize};

use crate::report::TableData;
use crate::runner::{run_pair, RunOptions};

use super::Scale;

/// One predicted target: `(target label, per-workload (name, predicted,
/// actual), quality)`.
pub type TargetPrediction = (String, Vec<(String, f64, f64)>, PredictionQuality);

/// Per-target prediction results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictData {
    /// Device the measurements were taken on.
    pub measured_on: String,
    /// Predictions per target device.
    pub targets: Vec<TargetPrediction>,
}

impl PredictData {
    /// Renders per-target quality.
    pub fn render(&self) -> String {
        let mut t = TableData::new(
            format!("Spa prediction (measured on {})", self.measured_on),
            &["Target", "MAE (pp)", "Correlation", "n"],
        );
        for (label, _, q) in &self.targets {
            t.push_row(vec![
                label.clone(),
                format!("{:.1}", q.mae_pp),
                q.correlation
                    .map(|r| format!("{r:.3}"))
                    .unwrap_or_else(|| "-".into()),
                q.n.to_string(),
            ]);
        }
        t.render()
    }
}

/// Table 1 profiles used by the predictor (nominal specs, not the
/// measured counters — the point is predicting unmeasured devices).
fn profile_of(label: &str) -> DeviceProfile {
    match label {
        "Local" => DeviceProfile::new(111.0, 285.0),
        "NUMA" => DeviceProfile::new(193.0, 120.0),
        "CXL-A" => DeviceProfile::new(214.0, 34.0),
        "CXL-B" => DeviceProfile::new(271.0, 29.0),
        "CXL-C" => DeviceProfile::new(394.0, 20.0),
        "CXL-D" => DeviceProfile::new(239.0, 60.0),
        other => panic!("unknown device label {other}"),
    }
}

/// Runs the prediction experiment: measure on CXL-A, predict NUMA,
/// CXL-B and CXL-D.
pub fn run(scale: Scale) -> PredictData {
    let platform = Platform::emr2s();
    let opts = RunOptions {
        mem_refs: scale.mem_refs(),
        ..Default::default()
    };
    let workloads = scale.select_workloads();
    let local_profile = profile_of("Local");
    let measured_profile = profile_of("CXL-A");

    // Measure every workload once on CXL-A (and its local baseline),
    // fanned out over the worker pool.
    let measured = crate::runner::run_population_par(
        &platform,
        &presets::local_emr(),
        &presets::cxl_a(),
        &workloads,
        &opts,
    );

    // Ground-truth runs for every (target × workload) cell, flattened
    // into one parallel work list (serial order: targets outer).
    let target_specs = [
        ("NUMA", presets::numa_emr()),
        ("CXL-B", presets::cxl_b()),
        ("CXL-D", presets::cxl_d()),
    ];
    let flat: Vec<(&melody_mem::DeviceSpec, &melody_workloads::WorkloadSpec)> = target_specs
        .iter()
        .flat_map(|(_, spec)| workloads.iter().map(move |w| (spec, w)))
        .collect();
    // Domain "pair.slowdown", not "pair": same cell configuration but an
    // f64 payload rather than a full PairOutcome.
    let truths = crate::campaign::cached_map(
        "pair.slowdown",
        &flat,
        |(spec, w)| {
            crate::campaign::pair_config_json(&platform, &presets::local_emr(), spec, w, &opts)
        },
        |(spec, w)| run_pair(&platform, &presets::local_emr(), spec, w, &opts).slowdown,
    );

    let mut targets = Vec::new();
    for ((label, _), truth_chunk) in target_specs
        .iter()
        .zip(truths.chunks_exact(workloads.len()))
    {
        let target_profile = profile_of(label);
        let mut rows = Vec::new();
        let mut predicted = Vec::new();
        let mut actual = Vec::new();
        for ((w, m), &truth) in workloads.iter().zip(&measured).zip(truth_chunk) {
            let demand_gbps = m.local.device_stats.bandwidth_gbps();
            let meas = Measurement {
                local: &m.local.counters,
                on_device: &m.target.counters,
                local_profile,
                device_profile: measured_profile,
                demand_gbps,
            };
            let p = predict_slowdown(&meas, target_profile);
            rows.push((w.name.clone(), p, truth));
            predicted.push(p);
            actual.push(truth);
        }
        let quality = evaluate(&predicted, &actual);
        targets.push((label.to_string(), rows, quality));
    }
    PredictData {
        measured_on: "CXL-A".into(),
        targets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictions_track_actuals() {
        let d = run(Scale::Smoke);
        for (label, _, q) in &d.targets {
            let r = q.correlation.unwrap_or(0.0);
            // NUMA is the furthest extrapolation from a CXL-A measurement
            // (different bandwidth class); allow it a looser bound.
            let floor = if label == "NUMA" { 0.7 } else { 0.8 };
            assert!(
                r > floor,
                "{label}: predicted-vs-actual correlation {r} too weak"
            );
        }
        // Same-family device with the closest spec predicts best in MAE.
        let mae = |l: &str| {
            d.targets
                .iter()
                .find(|(t, _, _)| t == l)
                .expect("target")
                .2
                .mae_pp
        };
        assert!(mae("CXL-B") < 60.0, "CXL-B MAE {}", mae("CXL-B"));
    }
}
