//! Figure 7: tail latencies in real workloads — per-millisecond latency
//! and bandwidth time series for `508.namd` (panels a/b) and Redis
//! YCSB-C tail-latency percentiles (panel c).

use melody_cpu::Platform;
use melody_mem::presets;
use melody_workloads::registry;
use serde::{Deserialize, Serialize};

use crate::report::{Series, TableData};
use crate::runner::{run_workload, RunOptions};

use super::Scale;

/// Figure 7 data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig07Data {
    /// Panel a: per-window max memory latency (µs) over time (s), one
    /// series per config, for `508.namd`.
    pub latency_series: Vec<Series>,
    /// Panel b: per-window read bandwidth (GB/s) over time (s) on CXL-C.
    pub bandwidth_series: Series,
    /// Panel c: Redis YCSB-C latency percentiles per config:
    /// (config, [(percentile, latency µs)]).
    pub ycsb_percentiles: Vec<Series>,
}

impl Fig07Data {
    /// Renders panel c as a table.
    pub fn render(&self) -> String {
        let mut t = TableData::new(
            "fig07c: Redis YCSB-C memory-latency percentiles (ns)",
            &["Config", "p50", "p90", "p99", "p99.9"],
        );
        for s in &self.ycsb_percentiles {
            let find = |p: f64| {
                s.points
                    .iter()
                    .find(|(x, _)| (*x - p).abs() < 1e-9)
                    .map(|(_, y)| format!("{y:.0}"))
                    .unwrap_or_else(|| "-".into())
            };
            t.push_row(vec![
                s.name.clone(),
                find(50.0),
                find(90.0),
                find(99.0),
                find(99.9),
            ]);
        }
        t.render()
    }
}

/// Runs the Figure 7 experiment.
pub fn run(scale: Scale) -> Fig07Data {
    let namd = registry::by_name("508.namd").expect("508.namd in registry");
    let opts = RunOptions {
        mem_refs: scale.mem_refs(),
        sample_interval_ns: Some(20_000), // fine-grained windows
        ..Default::default()
    };
    let configs = [presets::local_emr(), presets::numa_emr(), presets::cxl_c()];
    let mut latency_series = Vec::new();
    let mut bandwidth_series = Series::new("CXL-C read BW", Vec::new());
    for spec in &configs {
        let r = run_workload(&Platform::emr2s(), spec, &namd, &opts);
        let pts: Vec<(f64, f64)> = r
            .latency_series
            .iter()
            .map(|p| (p.time_ns as f64 / 1e9, p.max_lat_ns as f64 / 1_000.0))
            .collect();
        if spec.name() == "CXL-C" {
            bandwidth_series.points = r
                .latency_series
                .iter()
                .map(|p| {
                    (
                        p.time_ns as f64 / 1e9,
                        // bytes per 20 µs window -> GB/s.
                        p.read_bytes as f64 / 20_000.0,
                    )
                })
                .collect();
        }
        latency_series.push(Series::new(spec.name(), pts));
    }

    // Panel c: Redis YCSB-C on local/NUMA/CXL-B/CXL-C; report the
    // demand-latency distribution the workload observed.
    let ycsb_c = registry::by_name("redis.ycsb-C").expect("ycsb-C");
    let mut ycsb_percentiles = Vec::new();
    for spec in [
        presets::local_emr(),
        presets::numa_emr(),
        presets::cxl_b(),
        presets::cxl_c(),
    ] {
        let r = run_workload(
            &Platform::emr2s(),
            &spec,
            &ycsb_c,
            &RunOptions {
                mem_refs: scale.mem_refs(),
                ..Default::default()
            },
        );
        let pts = [50.0, 75.0, 90.0, 95.0, 99.0, 99.9]
            .iter()
            .map(|&p| (p, r.demand_lat_hist.percentile(p) as f64))
            .collect();
        ycsb_percentiles.push(Series::new(spec.name(), pts));
    }

    Fig07Data {
        latency_series,
        bandwidth_series,
        ycsb_percentiles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namd_spikes_on_cxl_c_despite_low_bandwidth() {
        let d = run(Scale::Smoke);
        let cxl = d
            .latency_series
            .iter()
            .find(|s| s.name == "CXL-C")
            .expect("CXL-C series");
        let local = d
            .latency_series
            .iter()
            .find(|s| s.name == "Local")
            .expect("Local series");
        // Paper: CXL-C shows µs-scale latency spikes even though namd's
        // bandwidth is mostly low; local stays far lower.
        assert!(cxl.max_y() > 0.7, "CXL-C max {} µs", cxl.max_y());
        assert!(
            local.max_y() < cxl.max_y() / 2.0,
            "local {} vs CXL-C {}",
            local.max_y(),
            cxl.max_y()
        );
    }

    #[test]
    fn ycsb_c_tails_worst_on_cxl_c() {
        let d = run(Scale::Smoke);
        let tail = |name: &str| {
            d.ycsb_percentiles
                .iter()
                .find(|s| s.name == name)
                .expect("series")
                .points
                .iter()
                .find(|(p, _)| *p == 99.9)
                .expect("p99.9")
                .1
        };
        assert!(
            tail("CXL-C") > tail("Local"),
            "CXL-C {} vs local {}",
            tail("CXL-C"),
            tail("Local")
        );
        assert!(tail("CXL-C") > tail("CXL-B"));
    }
}
