//! Ablation experiments over the model's design choices.
//!
//! The device models attribute CXL's behaviour to explicit mechanisms
//! (transaction-layer jitter, congestion episodes, link retries, duplex
//! links, prefetch timeliness, bounded MLP). Each ablation switches one
//! mechanism off and measures what disappears — both a validation that
//! the mechanisms do what `DESIGN.md` claims and a reproduction of the
//! paper's forward-looking points (thermal throttling for PCIe 6.0-class
//! devices, CPU tolerance via MLP).

use melody_cpu::Platform;
use melody_mem::{presets, CxlConfig, DeviceSpec, ThermalConfig};
use melody_mio::MioConfig;
use melody_sim::Dist;
use melody_workloads::mlc::{loaded_latency, MlcConfig};
use melody_workloads::registry;
use serde::{Deserialize, Serialize};

use crate::report::TableData;
use crate::runner::{run_pair, RunOptions};

use super::Scale;

fn cxl_b_cfg() -> CxlConfig {
    match presets::cxl_b() {
        DeviceSpec::Cxl(cfg) => cfg,
        _ => unreachable!("cxl_b is a CXL spec"),
    }
}

/// Tail-mechanism ablation: p99.9 − p50 gap of CXL-B with each
/// stochastic mechanism removed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TailAblation {
    /// `(variant, tail gap ns)`.
    pub gaps: Vec<(String, u64)>,
}

impl TailAblation {
    /// Gap for a variant.
    pub fn gap(&self, variant: &str) -> Option<u64> {
        self.gaps
            .iter()
            .find(|(v, _)| v == variant)
            .map(|(_, g)| *g)
    }

    /// Renders as a table.
    pub fn render(&self) -> String {
        let mut t = TableData::new(
            "ablation: CXL-B tail mechanisms",
            &["Variant", "p99.9-p50 (ns)"],
        );
        for (v, g) in &self.gaps {
            t.push_row(vec![v.clone(), g.to_string()]);
        }
        t.render()
    }
}

/// Runs the tail-mechanism ablation under moderate R/W noise.
pub fn tail_mechanisms(scale: Scale) -> TailAblation {
    let mio_cfg = MioConfig {
        noise_threads: 3,
        noise_read_frac: 0.7,
        accesses: scale.mio_accesses(),
        ..Default::default()
    };
    let stock = cxl_b_cfg();
    let mut no_jitter = stock.clone();
    no_jitter.txn_jitter_ns = Dist::zero();
    let mut no_congestion = stock.clone();
    no_congestion.congestion_p = 0.0;
    let mut no_retry = stock.clone();
    no_retry.retry_p = 0.0;
    let mut none = stock.clone();
    none.txn_jitter_ns = Dist::zero();
    none.congestion_p = 0.0;
    none.retry_p = 0.0;

    let variants: Vec<(String, DeviceSpec)> = vec![
        ("stock".into(), DeviceSpec::Cxl(stock)),
        ("no-jitter".into(), DeviceSpec::Cxl(no_jitter)),
        ("no-congestion".into(), DeviceSpec::Cxl(no_congestion)),
        ("no-retry".into(), DeviceSpec::Cxl(no_retry)),
        ("none".into(), DeviceSpec::Cxl(none)),
    ];
    TailAblation {
        gaps: crate::campaign::cached_map(
            "mio.tailgap",
            &variants,
            |(name, spec)| {
                format!(
                    "{{\"label\":{name:?},\"spec\":{},\"noise_threads\":3,\
                     \"noise_read_frac\":0.7,\"accesses\":{}}}",
                    spec.canonical_json(),
                    scale.mio_accesses()
                )
            },
            |(name, spec)| (name.clone(), melody_mio::run(spec, &mio_cfg).tail_gap_ns),
        ),
    }
}

/// Thermal-throttling ablation (the paper's PCIe 6.0 outlook): mean and
/// tail latency of CXL-A under sustained load, with and without a
/// thermal model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThermalAblation {
    /// Mean loaded latency without throttling, ns.
    pub mean_off_ns: f64,
    /// Mean loaded latency with throttling, ns.
    pub mean_on_ns: f64,
    /// p99.9 without throttling, ns.
    pub p999_off_ns: u64,
    /// p99.9 with throttling, ns.
    pub p999_on_ns: u64,
}

/// Runs the thermal ablation.
pub fn thermal(scale: Scale) -> ThermalAblation {
    let stock = match presets::cxl_a() {
        DeviceSpec::Cxl(cfg) => cfg,
        _ => unreachable!(),
    };
    let mut hot = stock.clone();
    hot.thermal = Some(ThermalConfig {
        util_threshold: 0.5,
        period_ns: 20_000.0,
        duration_ns: 4_000.0,
    });
    let cfg = MlcConfig {
        delay_cycles: 0,
        total_requests: scale.mlc_requests(),
        ..MlcConfig::default()
    };
    let off = loaded_latency(&DeviceSpec::Cxl(stock), &cfg);
    let on = loaded_latency(&DeviceSpec::Cxl(hot), &cfg);
    ThermalAblation {
        mean_off_ns: off.mean_latency_ns(),
        mean_on_ns: on.mean_latency_ns(),
        p999_off_ns: off.latency.percentile(99.9),
        p999_on_ns: on.latency.percentile(99.9),
    }
}

/// Prefetcher ablation: per-workload slowdown with prefetchers on vs
/// off, plus the cache-component share (the Finding #4 causal check at
/// experiment scale).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrefetchAblation {
    /// `(workload, slowdown_on, slowdown_off, cache_component_on)`.
    pub rows: Vec<(String, f64, f64, f64)>,
}

/// Runs the prefetcher ablation on prefetch-sensitive workloads.
pub fn prefetchers(scale: Scale) -> PrefetchAblation {
    let names = ["603.bwaves", "649.fotonik3d", "503.bwaves", "605.mcf"];
    let platform = Platform::emr2s();
    let rows = names
        .iter()
        .map(|n| {
            let w = registry::by_name(n).expect("registry workload");
            let on = run_pair(
                &platform,
                &presets::local_emr(),
                &presets::cxl_a(),
                &w,
                &RunOptions {
                    mem_refs: scale.mem_refs(),
                    ..Default::default()
                },
            );
            let off = run_pair(
                &platform,
                &presets::local_emr(),
                &presets::cxl_a(),
                &w,
                &RunOptions {
                    mem_refs: scale.mem_refs(),
                    prefetchers: false,
                    ..Default::default()
                },
            );
            (
                n.to_string(),
                on.slowdown,
                off.slowdown,
                on.breakdown.cache(),
            )
        })
        .collect();
    PrefetchAblation { rows }
}

/// MLP (CPU tolerance) ablation: the same bandwidth-hungry workload on
/// CXL-A as the line-fill buffer shrinks — fewer outstanding misses
/// means less latency tolerance (Implication #1a: future CPUs need to
/// tolerate CXL latencies).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlpAblation {
    /// `(lfb entries, slowdown)`.
    pub points: Vec<(usize, f64)>,
}

/// Runs the MLP ablation on a latency-hiding subject: independent random
/// misses with moderate compute, single-threaded, below every device's
/// bandwidth cap — so the only question is how much of the latency the
/// outstanding-miss window hides. (A bandwidth-*saturating* workload
/// behaves oppositely: wider LFB raises local demand far above the CXL
/// cap and widens the gap; that regime is covered by Figure 8b.)
pub fn mlp_tolerance(scale: Scale) -> MlpAblation {
    use melody_workloads::{Pattern, Phase, Suite, WorkloadSpec};
    let w = WorkloadSpec::single(
        "ablation.mlp-probe",
        Suite::Phoronix,
        Phase {
            weight: 1.0,
            uops_per_mem: 10.0,
            dependence: 0.0,
            working_set: 2 << 30,
            seq_frac: 0.0,
            pattern: Pattern::Random,
            store_frac: 0.0,
        },
    );
    let points = [4usize, 8, 16, 32, 64, 128]
        .iter()
        .map(|&lfb| {
            let mut platform = Platform::emr2s();
            platform.lfb_entries = lfb;
            let p = run_pair(
                &platform,
                &presets::local_emr(),
                &presets::cxl_a(),
                &w,
                &RunOptions {
                    mem_refs: scale.mem_refs() / 2,
                    ..Default::default()
                },
            );
            (lfb, p.slowdown)
        })
        .collect();
    MlpAblation { points }
}

/// DIMM-fairness control (§3.2): the paper re-ran its tail comparison
/// with the server reduced to 2 DIMMs per socket to match the CXL
/// devices' channel counts, and still saw CXL tails but none on
/// local/NUMA. Returns `(label, p99.9 − p50 ns)`.
pub fn dimm_fairness(scale: Scale) -> Vec<(String, u64)> {
    use melody_mem::{DramTiming, ImcConfig};
    let local_2ch = DeviceSpec::Imc(ImcConfig::calibrated(
        "Local-2ch",
        111.0,
        DramTiming::ddr5(),
        2,
    ));
    let cfg = MioConfig {
        chase_threads: 8,
        accesses: scale.mio_accesses(),
        ..Default::default()
    };
    [
        ("Local-8ch".to_string(), presets::local_emr()),
        ("Local-2ch".to_string(), local_2ch),
        ("CXL-B".to_string(), presets::cxl_b()),
    ]
    .into_iter()
    .map(|(label, spec)| (label, melody_mio::run(&spec, &cfg).tail_gap_ns))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stochastic_mechanisms_cause_the_tail() {
        let a = tail_mechanisms(Scale::Smoke);
        let stock = a.gap("stock").expect("stock");
        let none = a.gap("none").expect("none");
        assert!(
            none * 3 < stock,
            "removing all mechanisms should collapse the tail: {none} vs {stock}"
        );
        // Each single mechanism removal helps or is neutral; jitter is
        // the dominant light-load contributor for CXL-B.
        let no_jitter = a.gap("no-jitter").expect("no-jitter");
        assert!(
            no_jitter < stock,
            "jitter contributes: {no_jitter} vs {stock}"
        );
    }

    #[test]
    fn thermal_throttling_raises_latency_under_load() {
        let t = thermal(Scale::Smoke);
        assert!(
            t.mean_on_ns > t.mean_off_ns,
            "throttling should raise mean latency: {} vs {}",
            t.mean_on_ns,
            t.mean_off_ns
        );
        assert!(t.p999_on_ns >= t.p999_off_ns);
    }

    #[test]
    fn prefetchers_help_both_backends() {
        let a = prefetchers(Scale::Smoke);
        let bwaves = a
            .rows
            .iter()
            .find(|r| r.0 == "603.bwaves")
            .expect("bwaves row");
        // Paper: disabling prefetchers cost 603.bwaves ~50% performance;
        // here the check is that the prefetch-sensitive workload keeps a
        // nonzero cache component with PF on.
        assert!(bwaves.3 > 0.05, "bwaves cache component {}", bwaves.3);
    }

    #[test]
    fn channel_count_does_not_explain_cxl_tails() {
        // Matching DIMM counts does not give local DRAM CXL-like tails.
        let rows = dimm_fairness(Scale::Smoke);
        let gap = |l: &str| rows.iter().find(|(n, _)| n == l).expect("row").1;
        assert!(
            gap("Local-2ch") < 150,
            "2-channel local gap {}",
            gap("Local-2ch")
        );
        assert!(
            gap("CXL-B") > 2 * gap("Local-2ch"),
            "CXL-B {} vs Local-2ch {}",
            gap("CXL-B"),
            gap("Local-2ch")
        );
    }

    #[test]
    fn more_mlp_means_more_latency_tolerance() {
        let a = mlp_tolerance(Scale::Smoke);
        let first = a.points.first().expect("points").1;
        let last = a.points.last().expect("points").1;
        assert!(
            last < first,
            "wider LFB should tolerate CXL better: lfb4 {first:.2} vs lfb32 {last:.2}"
        );
    }
}
