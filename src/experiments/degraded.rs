//! Degraded-device characterization: latency/bandwidth curves under
//! deterministic fault regimes.
//!
//! Sweeps (device × fault regime) cells, each an MLC-style loaded-latency
//! curve against the device with a [`melody_mem::FaultConfig`] attached,
//! and reports the curves alongside the RAS event counters the fault
//! layer accumulated. The sweep runs on the resilient cell harness: a
//! panicking cell (e.g. an invalid regime name) is reported as a
//! structured [`CellError`] while the remaining cells complete, and every
//! finished cell is checkpointed to a [`Journal`] so an interrupted sweep
//! resumed with `--resume` reproduces the uninterrupted output
//! byte-for-byte.

use std::sync::Mutex;

use melody_mem::{faults, presets, DeviceSpec, FaultConfig, RasCounters};
use melody_workloads::mlc;
use serde::{Deserialize, Serialize};

use crate::exec::{run_cells, CellError, CellPolicy};
use crate::journal::Journal;
use crate::report::{ras_table, TableData};

use super::Scale;

/// One point of a degraded latency/bandwidth curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradedPoint {
    /// Injected traffic delay, cycles.
    pub delay_cycles: u64,
    /// Achieved aggregate bandwidth, GB/s.
    pub bandwidth_gbps: f64,
    /// Mean foreground latency, ns.
    pub mean_latency_ns: f64,
    /// p99.9 foreground latency, ns.
    pub p999_ns: u64,
}

/// One finished (device × regime) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradedCell {
    /// Device keyword (e.g. `"cxl-c"`).
    pub device: String,
    /// Fault regime name (see [`faults::REGIMES`]).
    pub regime: String,
    /// The loaded-latency curve under this regime.
    pub points: Vec<DegradedPoint>,
    /// RAS events accumulated across the whole curve.
    pub ras: RasCounters,
}

/// The full degraded-device sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradedReport {
    /// Scale the sweep ran at.
    pub scale: Scale,
    /// Finished cells, in sweep order (device-major).
    pub cells: Vec<DegradedCell>,
    /// Cells that failed, as structured errors.
    pub errors: Vec<CellError>,
}

impl DegradedReport {
    /// Renders the curve summary, the RAS table, and any cell errors.
    pub fn render(&self) -> String {
        let mut curves = TableData::new(
            "degraded: latency/bandwidth under fault regimes",
            &["device", "regime", "idle(ns)", "p99.9(ns)", "peak(GB/s)"],
        );
        for c in &self.cells {
            let idle = c.points.first().map_or(0.0, |p| p.mean_latency_ns);
            let p999 = c.points.iter().map(|p| p.p999_ns).max().unwrap_or(0);
            let peak = c
                .points
                .iter()
                .map(|p| p.bandwidth_gbps)
                .fold(0.0, f64::max);
            curves.push_row(vec![
                c.device.clone(),
                c.regime.clone(),
                format!("{idle:.0}"),
                p999.to_string(),
                format!("{peak:.1}"),
            ]);
        }
        let ras_rows: Vec<(String, String, RasCounters)> = self
            .cells
            .iter()
            .filter(|c| !c.ras.is_zero())
            .map(|c| (c.device.clone(), c.regime.clone(), c.ras))
            .collect();
        let mut out = curves.render();
        if !ras_rows.is_empty() {
            out.push('\n');
            out.push_str(&ras_table("degraded: RAS events", &ras_rows).render());
        }
        if !self.errors.is_empty() {
            out.push_str("\n== failed cells ==\n");
            for e in &self.errors {
                out.push_str(&format!("{e}\n"));
            }
        }
        out
    }

    /// The cell for a (device, regime) pair, if it finished.
    pub fn cell(&self, device: &str, regime: &str) -> Option<&DegradedCell> {
        self.cells
            .iter()
            .find(|c| c.device == device && c.regime == regime)
    }
}

/// Resolves the device keywords used by the degraded sweep.
fn device_spec(keyword: &str) -> Option<DeviceSpec> {
    Some(match keyword {
        "cxl-a" => presets::cxl_a(),
        "cxl-b" => presets::cxl_b(),
        "cxl-c" => presets::cxl_c(),
        "cxl-d" => presets::cxl_d(),
        _ => return None,
    })
}

/// The standard sweep: the four Table-1 CXL devices × every fault regime.
pub fn standard_cells() -> Vec<(String, String)> {
    let mut cells = Vec::new();
    for dev in ["cxl-a", "cxl-b", "cxl-c", "cxl-d"] {
        for regime in faults::REGIMES {
            cells.push((dev.to_string(), regime.to_string()));
        }
    }
    cells
}

/// The delay ladder for degraded curves (shortened at smoke scale).
fn degraded_delays(scale: Scale) -> Vec<u64> {
    match scale {
        Scale::Smoke => vec![0, 200, 1_000, 7_000, 40_000],
        _ => mlc::standard_delays(),
    }
}

/// The journal key of one cell at one scale.
pub fn cell_key(device: &str, regime: &str, scale: Scale) -> String {
    format!("{device}|{regime}|{scale:?}")
}

/// The content-addressed result-cache key of one cell, derived from the
/// fully resolved configuration (device spec with faults applied, delay
/// ladder, request count). `None` when the names don't resolve — such
/// cells skip the cache and surface their error through the harness.
fn cell_cache_key(device: &str, regime: &str, scale: Scale) -> Option<String> {
    let spec = device_spec(device)?;
    let fc = FaultConfig::by_name(regime)?;
    let spec = if fc.is_inert() {
        spec
    } else {
        spec.with_faults(fc)
    };
    let config = format!(
        "{{\"spec\":{},\"delays\":{:?},\"requests\":{}}}",
        spec.canonical_json(),
        degraded_delays(scale),
        scale.mlc_requests()
    );
    Some(crate::campaign::cell_fingerprint("degraded.cell", &config))
}

/// Computes one (device × regime) cell.
///
/// # Panics
///
/// Panics on an unknown device keyword or regime name — under the
/// resilient harness this surfaces as a [`CellError`], not a dead sweep.
fn compute_cell(device: &str, regime: &str, scale: Scale) -> DegradedCell {
    let spec = device_spec(device).unwrap_or_else(|| panic!("unknown device `{device}`"));
    let fc =
        FaultConfig::by_name(regime).unwrap_or_else(|| panic!("unknown fault regime `{regime}`"));
    // The inert regime attaches no fault layer at all, keeping the
    // baseline curve byte-identical to the device without this PR.
    let spec = if fc.is_inert() {
        spec
    } else {
        spec.with_faults(fc)
    };
    let delays = degraded_delays(scale);
    let pts = mlc::latency_bandwidth_curve(&spec, &delays, 1.0, scale.mlc_requests());
    let mut ras = RasCounters::default();
    let points = pts
        .iter()
        .map(|p| {
            ras.merge(&p.stats.ras);
            DegradedPoint {
                delay_cycles: p.delay_cycles,
                bandwidth_gbps: p.bandwidth_gbps,
                mean_latency_ns: p.mean_latency_ns(),
                p999_ns: p.latency.percentile(99.9),
            }
        })
        .collect();
    DegradedCell {
        device: device.to_string(),
        regime: regime.to_string(),
        points,
        ras,
    }
}

/// Runs the standard sweep with an in-memory journal and default policy.
pub fn run(scale: Scale) -> DegradedReport {
    run_with(
        scale,
        &standard_cells(),
        &mut Journal::in_memory(),
        None,
        &CellPolicy::default(),
    )
}

/// Runs a degraded sweep over explicit cells with checkpointing.
///
/// Cells already in `journal` are restored without recomputation (the
/// `--resume` path); newly finished cells are appended to it as they
/// complete, so a killed sweep loses at most in-flight cells. `limit`
/// caps how many *missing* cells are attempted this invocation (used by
/// interrupt tests and incremental runs); cells beyond the limit are
/// simply absent from this report, not errors.
///
/// Every result — journaled or fresh — passes through one JSON
/// round-trip, so resumed and uninterrupted sweeps serialize
/// byte-identically.
pub fn run_with(
    scale: Scale,
    cells: &[(String, String)],
    journal: &mut Journal,
    limit: Option<usize>,
    policy: &CellPolicy,
) -> DegradedReport {
    // Partition into journaled, cache-warm and missing cells. The
    // journal (exact sweep state) wins over the content-addressed cache
    // (any earlier run with the same resolved config); both round-trip
    // through the same JSON, so all three sources are byte-identical.
    let mut slots: Vec<Option<DegradedCell>> = Vec::with_capacity(cells.len());
    let mut todo: Vec<(usize, String)> = Vec::new();
    for (i, (device, regime)) in cells.iter().enumerate() {
        let key = cell_key(device, regime, scale);
        let ck = cell_cache_key(device, regime, scale);
        if let Some(json) = journal.get(&key) {
            let cell = serde_json::from_str(json).expect("journaled cell must deserialize");
            // Backfill the cache so journal-free runs also start warm.
            if let Some(ck) = &ck {
                crate::cache::with_global(|c| {
                    if let Some(c) = c {
                        let _ = c.put(ck, json);
                    }
                });
            }
            slots.push(Some(cell));
            continue;
        }
        let cached = ck
            .as_deref()
            .and_then(|ck| crate::cache::with_global(|c| c.and_then(|c| c.get(ck))));
        if let Some(json) = cached {
            if let Ok(cell) = serde_json::from_str::<DegradedCell>(&json) {
                // Checkpoint the restored cell so `--resume` without the
                // cache still skips it.
                journal.record(&key, &json).expect("journal append");
                slots.push(Some(cell));
                continue;
            }
        }
        slots.push(None);
        todo.push((i, key));
    }
    if let Some(n) = limit {
        todo.truncate(n);
    }

    // Run the missing cells on the resilient harness, checkpointing each
    // as it completes (workers append concurrently; the journal is keyed
    // so append order is irrelevant).
    let journal_mx = Mutex::new(journal);
    let results = run_cells(
        &todo,
        policy,
        |_, (_, key)| key.clone(),
        |(i, key)| {
            let (device, regime) = &cells[*i];
            let cell = compute_cell(device, regime, scale);
            let json = serde_json::to_string(&cell).expect("cell must serialize");
            journal_mx
                .lock()
                .expect("journal lock")
                .record(key, &json)
                .expect("journal append");
            if let Some(ck) = cell_cache_key(device, regime, scale) {
                crate::cache::with_global(|c| {
                    if let Some(c) = c {
                        let _ = c.put(&ck, &json);
                    }
                });
            }
            // Round-trip so fresh results are byte-identical to restored
            // ones.
            serde_json::from_str::<DegradedCell>(&json).expect("cell must round-trip")
        },
    );

    let mut errors = Vec::new();
    for ((i, _), r) in todo.into_iter().zip(results) {
        match r {
            Ok(cell) => slots[i] = Some(cell),
            Err(e) => errors.push(CellError { index: i, ..e }),
        }
    }
    DegradedReport {
        scale,
        cells: slots.into_iter().flatten().collect(),
        errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_cells() -> Vec<(String, String)> {
        vec![
            ("cxl-a".into(), "none".into()),
            ("cxl-c".into(), "crc-storm".into()),
            ("cxl-d".into(), "thermal".into()),
        ]
    }

    #[test]
    fn faulted_cells_accumulate_ras_and_none_does_not() {
        let r = run_with(
            Scale::Smoke,
            &smoke_cells(),
            &mut Journal::in_memory(),
            None,
            &CellPolicy::default(),
        );
        assert!(r.errors.is_empty(), "errors: {:?}", r.errors);
        assert_eq!(r.cells.len(), 3);
        assert!(r.cell("cxl-a", "none").expect("baseline").ras.is_zero());
        let storm = r.cell("cxl-c", "crc-storm").expect("storm cell");
        assert!(
            storm.ras.correctable > 0,
            "storm must replay: {:?}",
            storm.ras
        );
        let thermal = r.cell("cxl-d", "thermal").expect("thermal cell");
        assert!(
            thermal.ras.throttle_ps > 0,
            "thermal regime must throttle under load: {:?}",
            thermal.ras
        );
        assert!(r.render().contains("RAS events"));
    }

    #[test]
    fn unknown_regime_is_a_cell_error_not_a_dead_sweep() {
        let cells = vec![
            ("cxl-a".into(), "none".into()),
            ("cxl-b".into(), "no-such-regime".into()),
        ];
        let r = run_with(
            Scale::Smoke,
            &cells,
            &mut Journal::in_memory(),
            None,
            &CellPolicy::default(),
        );
        assert_eq!(r.cells.len(), 1, "good cell still completes");
        assert_eq!(r.errors.len(), 1);
        let e = &r.errors[0];
        assert_eq!(e.index, 1);
        assert!(
            e.message.contains("no-such-regime"),
            "message: {}",
            e.message
        );
        assert!(r.render().contains("failed cells"));
    }

    #[test]
    fn journaled_rerun_skips_and_matches() {
        let cells = smoke_cells();
        let mut j = Journal::in_memory();
        let a = run_with(Scale::Smoke, &cells, &mut j, None, &CellPolicy::default());
        assert_eq!(j.len(), 3);
        // Second run restores everything from the journal.
        let b = run_with(Scale::Smoke, &cells, &mut j, None, &CellPolicy::default());
        assert_eq!(
            serde_json::to_string(&a).expect("a"),
            serde_json::to_string(&b).expect("b"),
        );
    }

    #[test]
    fn standard_cells_cover_devices_times_regimes() {
        let cells = standard_cells();
        assert_eq!(cells.len(), 4 * faults::REGIMES.len());
        for (d, r) in &cells {
            assert!(device_spec(d).is_some(), "device {d}");
            assert!(FaultConfig::by_name(r).is_some(), "regime {r}");
        }
    }
}
