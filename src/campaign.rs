//! Campaign engine: declarative platform × device × workload × faults
//! grids with content-addressed result caching and CI sharding.
//!
//! A campaign is a JSON [`CampaignSpec`] naming platforms, devices,
//! fault regimes and workloads. [`CampaignSpec::expand`] resolves the
//! grid into concrete [`CampaignCell`]s — fully-resolved configurations,
//! each with a stable fingerprint over everything that determines its
//! result (platform parameters, device spec with faults applied,
//! workload spec, run options, and the code-schema version stamps).
//! [`run_campaign`] then consults a journal (same-run resume) and a
//! [`ResultCache`] (cross-run warm starts) before dispatching only the
//! misses to the resilient worker pool.
//!
//! Byte-identity contract: every cell result — journaled, cached, or
//! freshly simulated — passes through exactly one compact-JSON
//! round-trip before entering the report, so campaign output is
//! identical whether cells came from cache, fresh simulation, any
//! `--jobs` setting, or any shard split merged back together. CI
//! enforces this with `cmp`.
//!
//! The same machinery backs the experiment drivers via [`cached_map`]:
//! with no process-wide cache installed it degenerates to a plain
//! [`crate::exec::parallel_map`] (the exact pre-cache code path); with
//! `--cache DIR` it keys each cell and reuses prior results.

use std::sync::Mutex;

use melody_cpu::Platform;
use melody_mem::{presets, DeviceSpec, FaultConfig, PolicyKind, TieringConfig};
use melody_spa::Breakdown;
use melody_workloads::{registry, WorkloadSpec};
use serde::{Deserialize, Serialize};

use crate::cache::{self, ResultCache};
use crate::exec::{run_cells, CellError, CellPolicy};
use crate::experiments::Scale;
use crate::journal::Journal;
use crate::report::TableData;
use crate::runner::{run_pair, PairOutcome, RunOptions};

/// Version stamp of the campaign's cached result payloads (the
/// serialized [`PairOutcome`] plus derived row schema). Mixed into every
/// cell fingerprint; bump it when the payload's shape or meaning changes
/// so stale cache entries become unreachable (see EXPERIMENTS.md,
/// "Campaigns and the result cache").
pub const RESULT_SCHEMA_VERSION: u32 = 2;

/// Resolves a device keyword (`local`, `numa`, `cxl-a` … `cxl-d`,
/// `skx-140`, `skx-190`, `skx-410`, with optional `+numa` / `+switch` /
/// `-x2` suffixes) to its preset spec.
pub fn device_by_name(name: &str) -> Option<DeviceSpec> {
    let base = presets::device_class;
    if let Some(stripped) = name.strip_suffix("+numa") {
        return base(stripped).map(|d| d.with_numa_hop());
    }
    if let Some(stripped) = name.strip_suffix("+switch") {
        return base(stripped).map(|d| d.with_switch_hop());
    }
    if let Some(stripped) = name.strip_suffix("-x2") {
        return base(stripped).map(|d| d.interleaved(2));
    }
    base(name)
}

/// Resolves a platform keyword (`spr2s`, `emr2s`, `emr2s-prime`,
/// `skx2s`, `skx8s`) to its [`Platform`].
pub fn platform_by_name(name: &str) -> Option<Platform> {
    Some(match name {
        "spr2s" => Platform::spr2s(),
        "emr2s" => Platform::emr2s(),
        "emr2s-prime" => Platform::emr2s_prime(),
        "skx2s" => Platform::skx2s(),
        "skx8s" => Platform::skx8s(),
        _ => return None,
    })
}

/// The local-DRAM baseline device paired with a platform (matching the
/// paper's Table 1 testbeds; `melody run --platform` uses the same map).
pub fn local_for_platform(platform: &Platform) -> DeviceSpec {
    match platform.name.as_str() {
        "SPR2S" => presets::local_spr(),
        "EMR2S'" => presets::local_emr_prime(),
        "SKX2S" => presets::local_skx2s(),
        "SKX8S" => presets::local_skx8s(),
        _ => presets::local_emr(),
    }
}

/// Fingerprint of one simulation cell: the canonical config JSON mixed
/// with every schema stamp that can change what a stored result means —
/// the cache envelope version, this campaign payload version, and the
/// device/workload spec versions.
pub fn cell_fingerprint(domain: &str, config_json: &str) -> String {
    cache::fingerprint(&[
        "melody-cell",
        &cache::CACHE_SCHEMA_VERSION.to_string(),
        &RESULT_SCHEMA_VERSION.to_string(),
        &melody_mem::SPEC_SCHEMA_VERSION.to_string(),
        &melody_workloads::SPEC_SCHEMA_VERSION.to_string(),
        domain,
        config_json,
    ])
}

/// Canonical config JSON of one local-vs-target pair run — the hash
/// input for [`cell_fingerprint`] used by all pair-running drivers.
pub fn pair_config_json(
    platform: &Platform,
    local: &DeviceSpec,
    target: &DeviceSpec,
    workload: &WorkloadSpec,
    opts: &RunOptions,
) -> String {
    format!(
        "{{\"platform\":{},\"local\":{},\"target\":{},\"workload\":{},\"opts\":{}}}",
        serde_json::to_string(platform).expect("Platform serializes"),
        local.canonical_json(),
        target.canonical_json(),
        workload.canonical_json(),
        serde_json::to_string(opts).expect("RunOptions serializes"),
    )
}

/// Cache-aware [`crate::exec::parallel_map`]: with no process-wide cache
/// installed ([`cache::set_global`]) this *is* `parallel_map` — same
/// code path, byte-identical output. With a cache, each item's config
/// (from `key_config`) is fingerprinted under `domain`; hits
/// deserialize from the cache and only misses are simulated (then
/// stored). Fresh results round-trip through the same compact JSON a
/// hit would load from, so warm and cold runs are structurally
/// identical.
pub fn cached_map<T, R>(
    domain: &str,
    items: &[T],
    key_config: impl Fn(&T) -> String + Sync,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R>
where
    T: Sync,
    R: Send + Serialize + Deserialize,
{
    if !cache::global_enabled() {
        return crate::exec::parallel_map(items, f);
    }
    let keys: Vec<String> = items
        .iter()
        .map(|t| cell_fingerprint(domain, &key_config(t)))
        .collect();
    let mut slots: Vec<Option<R>> = cache::with_global(|c| {
        let c = c.expect("cache checked enabled");
        keys.iter()
            .map(|k| c.get(k).and_then(|p| serde_json::from_str(&p).ok()))
            .collect()
    });
    let miss_idx: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_none())
        .map(|(i, _)| i)
        .collect();
    let miss_items: Vec<&T> = miss_idx.iter().map(|&i| &items[i]).collect();
    let fresh = crate::exec::parallel_map(&miss_items, |t| f(t));
    for (&slot, r) in miss_idx.iter().zip(fresh) {
        let json = serde_json::to_string(&r).expect("cell result serializes");
        cache::with_global(|c| {
            // A full disk is a degraded cache, not a failed experiment:
            // the result below is still returned either way.
            let _ = c.expect("cache checked enabled").put(&keys[slot], &json);
        });
        slots[slot] = Some(serde_json::from_str(&json).expect("cell result round-trips"));
    }
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// A declarative campaign: the JSON document `melody campaign` loads.
///
/// `workloads` may list registry names explicitly; when empty, the
/// campaign draws the deterministic class-spanning selection for
/// `scale` (default `smoke`). `faults` defaults to `["none"]`,
/// `mem_refs` to the scale's reference count and `seed` to 42.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Campaign name (labels reports and artifacts).
    pub name: String,
    /// Platform keywords (see [`platform_by_name`]).
    pub platforms: Vec<String>,
    /// Device keywords (see [`device_by_name`]).
    pub devices: Vec<String>,
    /// Explicit workload names; empty means "use `scale` selection".
    #[serde(default)]
    pub workloads: Vec<String>,
    /// Fault regimes ([`melody_mem::faults::REGIMES`]); empty = `none`.
    #[serde(default)]
    pub faults: Vec<String>,
    /// Workload-selection scale: `smoke`, `quick` or `full`.
    #[serde(default)]
    pub scale: Option<String>,
    /// Memory references per run (default: the scale's).
    #[serde(default)]
    pub mem_refs: Option<u64>,
    /// Base RNG seed (default 42).
    #[serde(default)]
    pub seed: Option<u64>,
    /// Fidelity tier for every cell in the grid:
    /// `detailed` | `sampled` | `fast` (default: the process-wide
    /// setting, i.e. the binary's `--fidelity` flag or `detailed`).
    #[serde(default)]
    pub fidelity: Option<String>,
    /// Sampled-tier warmup slots per period (default 512).
    #[serde(default)]
    pub sample_warmup: Option<u64>,
    /// Sampled-tier measurement-window slots per period (default 2048).
    #[serde(default)]
    pub sample_window: Option<u64>,
    /// Sampled-tier period length in slots (default 16384).
    #[serde(default)]
    pub sample_period: Option<u64>,
    /// Fabric topologies ([`melody_mem::TopologySpec`], inline in the
    /// campaign JSON). Each validated topology joins the device axis
    /// after `devices`, labelled by its topology name; a single-expander
    /// topology lowers to exactly its preset device, so it shares cache
    /// entries with the equivalent `devices` keyword by construction.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub topologies: Vec<melody_mem::TopologySpec>,
    /// Tiering migration policies ([`melody_mem::POLICIES`]): each
    /// policy joins the grid as its own axis between faults and
    /// workloads. Empty (or the `static` keyword) attaches no tiering
    /// layer, so policy-free campaigns hash and render identically to
    /// ones written before policies existed.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub policies: Vec<String>,
    /// Tiering page granularity in bytes (default 4096); only read by
    /// non-static policies.
    #[serde(default)]
    pub page_bytes: Option<u64>,
    /// Tiering migration bandwidth budget in GB/s (default 8.0); only
    /// read by non-static policies.
    #[serde(default)]
    pub migrate_budget_gbps: Option<f64>,
}

impl CampaignSpec {
    /// Loads a campaign spec from a JSON file.
    pub fn load(path: &str) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("{path}: not a campaign spec: {e:?}"))
    }

    /// The effective scale (`smoke` when unset).
    pub fn effective_scale(&self) -> Result<Scale, String> {
        match self.scale.as_deref() {
            None | Some("smoke") => Ok(Scale::Smoke),
            Some("quick") => Ok(Scale::Quick),
            Some("full") => Ok(Scale::Full),
            Some(other) => Err(format!("unknown scale `{other}` (smoke|quick|full)")),
        }
    }

    /// Expands the grid into fully-resolved cells, in deterministic
    /// platform-major order (platform, then device, then fault regime,
    /// then tiering policy, then workload). Unknown names are errors,
    /// not panics.
    pub fn expand(&self) -> Result<Vec<CampaignCell>, String> {
        let scale = self.effective_scale()?;
        if self.platforms.is_empty() || (self.devices.is_empty() && self.topologies.is_empty()) {
            return Err("campaign needs at least one platform and one device or topology".into());
        }
        let workloads: Vec<WorkloadSpec> = if self.workloads.is_empty() {
            scale.select_workloads()
        } else {
            self.workloads
                .iter()
                .map(|n| {
                    registry::by_name(n)
                        .ok_or_else(|| format!("unknown workload `{n}` (try `melody workloads`)"))
                })
                .collect::<Result<_, _>>()?
        };
        let faults: Vec<String> = if self.faults.is_empty() {
            vec!["none".to_string()]
        } else {
            self.faults.clone()
        };
        // The `static` spelling lowers to absence (like the inert fault
        // regime and degenerate topologies), so its cells share
        // fingerprints, labels and rendering with policy-free ones.
        let mut policies: Vec<(String, Option<TieringConfig>)> = Vec::new();
        let default_policies = [String::new()];
        for pol in if self.policies.is_empty() {
            &default_policies[..]
        } else {
            &self.policies[..]
        } {
            if pol.is_empty() || pol == "static" {
                policies.push((String::new(), None));
                continue;
            }
            let kind = PolicyKind::parse(pol)
                .ok_or_else(|| melody_mem::policy::unknown_policy_error(pol))?;
            let mut tc = TieringConfig::new(kind);
            if let Some(p) = self.page_bytes {
                tc.page_bytes = p;
            }
            if let Some(b) = self.migrate_budget_gbps {
                tc.migrate_budget_gbps = b;
            }
            tc.validate().map_err(|e| format!("tiering: {e}"))?;
            policies.push((pol.clone(), Some(tc)));
        }
        let fidelity = match self.fidelity.as_deref() {
            None => crate::exec::fidelity(),
            Some(s) => melody_cpu::Fidelity::parse(s)
                .ok_or_else(|| format!("unknown fidelity `{s}` (detailed|sampled|fast)"))?,
        };
        let mut sampling = crate::exec::sampling();
        if let Some(w) = self.sample_warmup {
            sampling.warmup_slots = w;
        }
        if let Some(w) = self.sample_window {
            sampling.window_slots = w;
        }
        if let Some(p) = self.sample_period {
            sampling.period_slots = p;
        }
        sampling.validate().map_err(|e| format!("sampling: {e}"))?;
        let opts = RunOptions {
            mem_refs: self.mem_refs.unwrap_or_else(|| scale.mem_refs()),
            seed: self.seed.unwrap_or(42),
            fidelity,
            sampling,
            ..Default::default()
        };
        // Unified device axis: explicit device keywords first, then
        // topologies lowered to device specs, labelled by topology name.
        let mut axis: Vec<(String, DeviceSpec)> = Vec::new();
        for dname in &self.devices {
            let device = device_by_name(dname).ok_or_else(|| {
                format!(
                    "unknown device `{dname}` (classes: {}; suffixes: +numa, +switch, -x2)",
                    presets::DEVICE_CLASSES.join(", ")
                )
            })?;
            axis.push((dname.clone(), device));
        }
        for t in &self.topologies {
            let fabric = t.clone().validate()?;
            if axis.iter().any(|(n, _)| n == fabric.name()) {
                return Err(format!(
                    "topology name `{}` duplicates another device-axis entry",
                    fabric.name()
                ));
            }
            axis.push((fabric.name().to_string(), fabric.lower()));
        }
        let mut cells = Vec::new();
        for pname in &self.platforms {
            let platform = platform_by_name(pname).ok_or_else(|| {
                format!("unknown platform `{pname}` (spr2s|emr2s|emr2s-prime|skx2s|skx8s)")
            })?;
            let local = local_for_platform(&platform);
            for (dname, device) in &axis {
                for fname in &faults {
                    let fc = FaultConfig::by_name(fname).ok_or_else(|| {
                        format!(
                            "unknown fault regime `{fname}` (known: {})",
                            melody_mem::faults::REGIMES.join(", ")
                        )
                    })?;
                    // The inert regime attaches no fault layer, so a
                    // faultless campaign hashes (and simulates)
                    // identically to one written before regimes existed.
                    let faulted = if fc.is_inert() {
                        device.clone()
                    } else {
                        device.clone().with_faults(fc)
                    };
                    for (polname, tiering) in &policies {
                        // Tiering wraps the (faulted) target with the
                        // platform's local DRAM as the fast tier; the
                        // wrapper spec enters the cell fingerprint via
                        // the target, so policies are cell identity.
                        let target = match tiering {
                            None => faulted.clone(),
                            Some(tc) => faulted.clone().with_tiering(tc.clone(), local.clone()),
                        };
                        for w in &workloads {
                            // Same domain as the drivers' pair runs: a
                            // cell simulated by `run_population_par` or
                            // a grid is a warm hit for an equivalent
                            // campaign cell.
                            let config = pair_config_json(&platform, &local, &target, w, &opts);
                            let key = cell_fingerprint("pair", &config);
                            cells.push(CampaignCell {
                                index: cells.len(),
                                key,
                                platform_name: pname.clone(),
                                device_name: dname.clone(),
                                fault_name: fname.clone(),
                                policy_name: polname.clone(),
                                platform: platform.clone(),
                                local: local.clone(),
                                target: target.clone(),
                                workload: w.clone(),
                                opts: opts.clone(),
                            });
                        }
                    }
                }
            }
        }
        Ok(cells)
    }
}

/// One fully-resolved campaign cell, ready to simulate or look up.
#[derive(Debug, Clone)]
pub struct CampaignCell {
    /// Position in the campaign's deterministic expansion order.
    pub index: usize,
    /// Content fingerprint of the resolved configuration.
    pub key: String,
    /// Platform keyword from the spec.
    pub platform_name: String,
    /// Device keyword from the spec.
    pub device_name: String,
    /// Fault regime name from the spec.
    pub fault_name: String,
    /// Tiering policy keyword; empty for static/no-policy cells (which
    /// carry no tiering layer at all).
    pub policy_name: String,
    /// Resolved platform.
    pub platform: Platform,
    /// Local-DRAM baseline for this platform.
    pub local: DeviceSpec,
    /// Target device (faults applied).
    pub target: DeviceSpec,
    /// Resolved workload.
    pub workload: WorkloadSpec,
    /// Run options.
    pub opts: RunOptions,
}

impl CampaignCell {
    /// Human-readable cell label for error reports. The policy segment
    /// appears only for adaptive-policy cells, so policy-free campaigns
    /// keep their pre-policy labels.
    pub fn label(&self) -> String {
        if self.policy_name.is_empty() {
            format!(
                "{}/{}/{}/{}",
                self.platform_name, self.device_name, self.fault_name, self.workload.name
            )
        } else {
            format!(
                "{}/{}/{}/{}/{}",
                self.platform_name,
                self.device_name,
                self.fault_name,
                self.policy_name,
                self.workload.name
            )
        }
    }
}

/// One shard of a campaign: this machine owns every cell whose index is
/// congruent to `index` modulo `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Shard index in `0..count`.
    pub index: usize,
    /// Total shard count (≥ 1).
    pub count: usize,
}

impl Shard {
    /// The whole campaign (one shard).
    pub fn full() -> Self {
        Self { index: 0, count: 1 }
    }

    /// Parses `"i/N"` (e.g. `"0/2"`); `i` must be below `N`.
    pub fn parse(s: &str) -> Option<Self> {
        let (i, n) = s.split_once('/')?;
        let index: usize = i.parse().ok()?;
        let count: usize = n.parse().ok()?;
        if count == 0 || index >= count {
            return None;
        }
        Some(Self { index, count })
    }

    /// True when this shard owns cell `index`.
    pub fn owns(&self, index: usize) -> bool {
        index % self.count == self.index
    }
}

impl std::fmt::Display for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// One finished campaign cell, as reported (derived from the
/// round-tripped [`PairOutcome`], so cached and fresh cells render
/// identically).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignRow {
    /// Platform keyword.
    pub platform: String,
    /// Device keyword.
    pub device: String,
    /// Fault regime.
    pub faults: String,
    /// Tiering policy keyword; empty (and skipped in serialization) for
    /// static/no-policy cells, so policy-free reports stay
    /// byte-identical to the pre-policy format.
    #[serde(default, skip_serializing_if = "String::is_empty")]
    pub policy: String,
    /// Workload name.
    pub workload: String,
    /// Suite label.
    pub suite: String,
    /// Slowdown vs the platform's local baseline (fraction).
    pub slowdown: f64,
    /// Spa breakdown of the slowdown.
    pub breakdown: Breakdown,
    /// Baseline IPC.
    pub local_ipc: f64,
    /// Target IPC.
    pub target_ipc: f64,
    /// Target demand-load p99.9 latency, ns.
    pub target_p999_ns: u64,
}

/// How each owned cell of a campaign run was resolved. Kept *outside*
/// [`CampaignReport`] deliberately: the report is byte-compared across
/// warm/cold/resumed runs, and resolution provenance is exactly what
/// differs between them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignRunStats {
    /// Cells this shard owns.
    pub owned: usize,
    /// Cells restored from the journal (same-run resume).
    pub journal_hits: usize,
    /// Cells restored from the result cache (cross-run warm start).
    pub cache_hits: usize,
    /// Cells freshly simulated.
    pub simulated: usize,
    /// Cells skipped by a cancellation token (e.g. a server drain);
    /// they are *not* failures — a resumed run completes them.
    pub cancelled: usize,
    /// Cells that failed (panic/deadline) and appear in
    /// [`CampaignReport::errors`].
    pub failed: usize,
}

impl CampaignRunStats {
    /// One-line render for stderr diagnostics (never stdout: warm and
    /// cold runs resolve differently, and stdout is byte-compared).
    pub fn render(&self) -> String {
        format!(
            "campaign cells: {} owned = {} journal + {} cache + {} simulated ({} cancelled, {} failed)",
            self.owned,
            self.journal_hits,
            self.cache_hits,
            self.simulated,
            self.cancelled,
            self.failed
        )
    }
}

/// A finished campaign run: the byte-stable [`CampaignReport`] plus the
/// run-specific resolution provenance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignRun {
    /// The byte-stable report (identical however cells were resolved).
    pub report: CampaignReport,
    /// Where each owned cell came from on *this* run.
    pub stats: CampaignRunStats,
}

/// The result of one campaign (or campaign shard).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Campaign name from the spec.
    pub name: String,
    /// Shard that produced this report (`"0/1"` = whole campaign).
    pub shard: String,
    /// Total cells in the full campaign (all shards).
    pub total_cells: usize,
    /// Finished rows, in campaign expansion order.
    pub rows: Vec<CampaignRow>,
    /// Cells that failed, as structured errors (indices are campaign
    /// expansion indices).
    pub errors: Vec<CellError>,
}

impl CampaignReport {
    /// Renders the per-cell table plus per-(platform, device, faults)
    /// aggregates.
    pub fn render(&self) -> String {
        // The Policy column appears only when some cell actually runs an
        // adaptive policy, so policy-free reports stay byte-identical to
        // the pre-policy format (CI cmp-gates this).
        let tiered = self.rows.iter().any(|r| !r.policy.is_empty());
        let mut headers = vec!["Platform", "Device", "Faults"];
        if tiered {
            headers.push("Policy");
        }
        headers.extend(["Workload", "Slowdown", "DRAM", "IPC", "p99.9(ns)"]);
        let mut t = TableData::new(
            format!(
                "campaign {} (shard {}, {} of {} cells)",
                self.name,
                self.shard,
                self.rows.len(),
                self.total_cells
            ),
            &headers,
        );
        for r in &self.rows {
            let mut row = vec![r.platform.clone(), r.device.clone(), r.faults.clone()];
            if tiered {
                row.push(if r.policy.is_empty() {
                    "static".to_string()
                } else {
                    r.policy.clone()
                });
            }
            row.extend([
                r.workload.clone(),
                format!("{:.1}%", r.slowdown * 100.0),
                format!("{:.1}%", r.breakdown.dram * 100.0),
                format!("{:.2}->{:.2}", r.local_ipc, r.target_ipc),
                r.target_p999_ns.to_string(),
            ]);
            t.push_row(row);
        }
        let mut out = t.render();
        let mut groups: Vec<(String, Vec<f64>)> = Vec::new();
        for r in &self.rows {
            let g = if r.policy.is_empty() {
                format!("{}/{}/{}", r.platform, r.device, r.faults)
            } else {
                format!("{}/{}/{}/{}", r.platform, r.device, r.faults, r.policy)
            };
            match groups.iter_mut().find(|(k, _)| *k == g) {
                Some((_, v)) => v.push(r.slowdown * 100.0),
                None => groups.push((g, vec![r.slowdown * 100.0])),
            }
        }
        let mut s = TableData::new(
            "campaign summary: slowdown % per setup",
            &["Setup", "n", "mean", "p50", "p90", "max"],
        );
        for (g, mut v) in groups {
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite slowdowns"));
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            let pick = |q: f64| v[((v.len() - 1) as f64 * q).round() as usize];
            s.push_row(vec![
                g,
                v.len().to_string(),
                format!("{mean:.1}"),
                format!("{:.1}", pick(0.50)),
                format!("{:.1}", pick(0.90)),
                format!("{:.1}", v[v.len() - 1]),
            ]);
        }
        out.push('\n');
        out.push_str(&s.render());
        if !self.errors.is_empty() {
            out.push_str("\n== failed cells ==\n");
            for e in &self.errors {
                out.push_str(&format!("{e}\n"));
            }
        }
        out
    }
}

fn row_from(cell: &CampaignCell, o: &PairOutcome) -> CampaignRow {
    CampaignRow {
        platform: cell.platform_name.clone(),
        device: cell.device_name.clone(),
        faults: cell.fault_name.clone(),
        policy: cell.policy_name.clone(),
        workload: o.workload.clone(),
        suite: o.suite.label().to_string(),
        slowdown: o.slowdown,
        breakdown: o.breakdown,
        local_ipc: o.local.ipc(),
        target_ipc: o.target.ipc(),
        target_p999_ns: o.target.demand_lat_hist.percentile(99.9),
    }
}

/// Runs a campaign (or one shard of it).
///
/// Resolution order per owned cell: the `journal` (same-run resume,
/// keyed by the same fingerprint), then `cache` (cross-run warm start),
/// then simulation on the resilient worker pool. Fresh results are
/// recorded to both, and every result passes through one compact-JSON
/// round-trip so warm, cold, resumed and sharded runs serialize
/// byte-identically. The returned [`CampaignRun`] pairs the byte-stable
/// report with per-run resolution provenance ([`CampaignRunStats`]) —
/// how many cells came from the journal, the cache, or fresh
/// simulation, and how many were skipped by `policy`'s cancellation
/// token (a drained run reports them as `cancelled`, not failed, so a
/// restart can finish the campaign).
pub fn run_campaign(
    spec: &CampaignSpec,
    shard: Shard,
    journal: &mut Journal,
    cache: Option<&ResultCache>,
    policy: &CellPolicy,
) -> Result<CampaignRun, String> {
    let _span = melody_telemetry::span("campaign");
    let cells = spec.expand()?;
    let total_cells = cells.len();
    let owned: Vec<&CampaignCell> = cells.iter().filter(|c| shard.owns(c.index)).collect();
    let mut stats = CampaignRunStats {
        owned: owned.len(),
        ..Default::default()
    };
    if let Some(p) = &policy.progress {
        p.begin(owned.len());
    }

    // Pass 1 (serial): resolve journal and cache hits.
    let mut slots: Vec<Option<PairOutcome>> = Vec::with_capacity(owned.len());
    let mut todo: Vec<&CampaignCell> = Vec::new();
    for cell in &owned {
        let mut from_journal = false;
        let restored = match journal.get(&cell.key) {
            Some(json) => {
                // Cache-aware resume: a journaled cell warms the shared
                // cache too, so a resumed shard seeds later runs.
                if let Some(c) = cache {
                    let _ = c.put(&cell.key, json);
                }
                from_journal = true;
                Some(json.to_string())
            }
            None => cache.and_then(|c| c.get(&cell.key)),
        };
        match restored.and_then(|json| serde_json::from_str::<PairOutcome>(&json).ok()) {
            Some(o) => {
                slots.push(Some(o));
                if let Some(p) = &policy.progress {
                    p.tick(if from_journal {
                        crate::progress::Resolution::Journal
                    } else {
                        crate::progress::Resolution::Cache
                    });
                }
                if from_journal {
                    stats.journal_hits += 1;
                } else {
                    stats.cache_hits += 1;
                }
            }
            None => {
                slots.push(None);
                todo.push(cell);
            }
        }
    }
    stats.simulated = todo.len();
    if melody_telemetry::metrics_on() {
        melody_telemetry::count("campaign.cells", owned.len() as u64);
        melody_telemetry::count("campaign.simulated", todo.len() as u64);
    }

    // Pass 2: simulate the misses, checkpointing each as it completes.
    let journal_mx = Mutex::new(journal);
    let results = run_cells(
        &todo,
        policy,
        |_, cell| cell.label(),
        |cell| {
            let o = run_pair(
                &cell.platform,
                &cell.local,
                &cell.target,
                &cell.workload,
                &cell.opts,
            );
            let json = serde_json::to_string(&o).expect("outcome serializes");
            journal_mx
                .lock()
                .expect("journal lock")
                .record(&cell.key, &json)
                .expect("journal append");
            if let Some(c) = cache {
                let _ = c.put(&cell.key, &json);
            }
            // Round-trip: fresh == restored, byte for byte.
            serde_json::from_str::<PairOutcome>(&json).expect("outcome round-trips")
        },
    );

    let mut errors = Vec::new();
    let todo_slots: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_none())
        .map(|(i, _)| i)
        .collect();
    for ((slot, cell), r) in todo_slots.into_iter().zip(&todo).zip(results) {
        match r {
            Ok(o) => slots[slot] = Some(o),
            Err(e) if e.kind == crate::exec::CellErrorKind::Cancelled => {
                // A drained cell is pending, not broken: it was counted
                // as `simulated` optimistically above; reclassify.
                stats.simulated -= 1;
                stats.cancelled += 1;
            }
            Err(e) => errors.push(CellError {
                index: cell.index,
                ..e
            }),
        }
    }
    stats.simulated -= errors.len();
    stats.failed = errors.len();

    let rows = owned
        .iter()
        .zip(&slots)
        .filter_map(|(cell, s)| s.as_ref().map(|o| row_from(cell, o)))
        .collect();
    Ok(CampaignRun {
        report: CampaignReport {
            name: spec.name.clone(),
            shard: shard.to_string(),
            total_cells,
            rows,
            errors,
        },
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            name: "tiny".into(),
            platforms: vec!["emr2s".into()],
            devices: vec!["cxl-a".into()],
            workloads: vec!["605.mcf".into(), "541.leela".into()],
            faults: vec![],
            scale: None,
            mem_refs: Some(4_000),
            seed: None,
            fidelity: None,
            sample_warmup: None,
            sample_window: None,
            sample_period: None,
            topologies: vec![],
            policies: vec![],
            page_bytes: None,
            migrate_budget_gbps: None,
        }
    }

    #[test]
    fn expansion_is_platform_major_and_stable() {
        let spec = CampaignSpec {
            devices: vec!["cxl-a".into(), "cxl-b".into()],
            faults: vec!["none".into(), "retrain".into()],
            ..tiny_spec()
        };
        let cells = spec.expand().expect("expand");
        assert_eq!(cells.len(), 2 * 2 * 2);
        assert_eq!(cells[0].label(), "emr2s/cxl-a/none/605.mcf");
        assert_eq!(cells[3].label(), "emr2s/cxl-a/retrain/541.leela");
        assert_eq!(cells[4].label(), "emr2s/cxl-b/none/605.mcf");
        // Fingerprints are stable across expansions and unique per cell.
        let again = spec.expand().expect("expand");
        for (a, b) in cells.iter().zip(&again) {
            assert_eq!(a.key, b.key);
        }
        let mut keys: Vec<&str> = cells.iter().map(|c| c.key.as_str()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), cells.len(), "all cell keys distinct");
    }

    #[test]
    fn config_changes_change_the_fingerprint() {
        let base = tiny_spec().expand().expect("expand");
        let reseeded = CampaignSpec {
            seed: Some(43),
            ..tiny_spec()
        }
        .expand()
        .expect("expand");
        let refsd = CampaignSpec {
            mem_refs: Some(5_000),
            ..tiny_spec()
        }
        .expand()
        .expect("expand");
        assert_ne!(base[0].key, reseeded[0].key, "seed is hashed");
        assert_ne!(base[0].key, refsd[0].key, "mem_refs is hashed");
        // The inert fault regime hashes identically to no regime at all.
        let explicit_none = CampaignSpec {
            faults: vec!["none".into()],
            ..tiny_spec()
        }
        .expand()
        .expect("expand");
        assert_eq!(base[0].key, explicit_none[0].key);
    }

    #[test]
    fn unknown_names_are_errors() {
        let bad_platform = CampaignSpec {
            platforms: vec!["pentium3".into()],
            ..tiny_spec()
        };
        assert!(bad_platform.expand().unwrap_err().contains("pentium3"));
        let bad_device = CampaignSpec {
            devices: vec!["cxl-z".into()],
            ..tiny_spec()
        };
        assert!(bad_device.expand().unwrap_err().contains("cxl-z"));
        let bad_workload = CampaignSpec {
            workloads: vec!["999.nothing".into()],
            ..tiny_spec()
        };
        assert!(bad_workload.expand().unwrap_err().contains("999.nothing"));
        let bad_fault = CampaignSpec {
            faults: vec!["meteor".into()],
            ..tiny_spec()
        };
        assert!(bad_fault.expand().unwrap_err().contains("meteor"));
    }

    fn topo(name: &str, devices: &[&str]) -> melody_mem::TopologySpec {
        let mut nodes = vec![r#"{"id": "h", "kind": "host"}"#.to_string()];
        let mut edges = Vec::new();
        for (i, d) in devices.iter().enumerate() {
            nodes.push(format!(
                r#"{{"id": "e{i}", "kind": "expander", "device": "{d}"}}"#
            ));
            edges.push(format!(r#"{{"from": "h", "to": "e{i}"}}"#));
        }
        let json = format!(
            r#"{{"name": "{name}", "nodes": [{}], "edges": [{}]}}"#,
            nodes.join(", "),
            edges.join(", ")
        );
        serde_json::from_str(&json).expect("valid topology JSON")
    }

    #[test]
    fn topologies_join_the_device_axis() {
        let spec = CampaignSpec {
            topologies: vec![topo("cxl-a-x2", &["cxl-a", "cxl-a"])],
            ..tiny_spec()
        };
        let cells = spec.expand().expect("expand");
        // Devices first, then topologies, same workload sweep each.
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].label(), "emr2s/cxl-a/none/605.mcf");
        assert_eq!(cells[2].label(), "emr2s/cxl-a-x2/none/605.mcf");
        assert_eq!(cells[2].target.name(), "CXL-Ax2");

        // A topology-only campaign is valid.
        let only = CampaignSpec {
            devices: vec![],
            topologies: vec![topo("solo", &["cxl-b"])],
            ..tiny_spec()
        };
        assert_eq!(only.expand().expect("expand").len(), 2);

        // A degenerate topology is the same cell as the plain keyword:
        // identical fingerprint, so they share cache entries.
        let plain = CampaignSpec {
            devices: vec!["cxl-b".into()],
            ..tiny_spec()
        };
        let via_topo = CampaignSpec {
            devices: vec![],
            topologies: vec![topo("cxl-b", &["cxl-b"])],
            ..tiny_spec()
        };
        assert_eq!(
            plain.expand().expect("expand")[0].key,
            via_topo.expand().expect("expand")[0].key,
        );

        // Name collisions on the axis are rejected.
        let dup = CampaignSpec {
            devices: vec!["cxl-a".into()],
            topologies: vec![topo("cxl-a", &["cxl-a"])],
            ..tiny_spec()
        };
        assert!(dup.expand().unwrap_err().contains("duplicates"));
        // Invalid topologies surface their validation error.
        let bad = CampaignSpec {
            topologies: vec![topo("bad", &["cxl-z"])],
            ..tiny_spec()
        };
        assert!(bad.expand().unwrap_err().contains("cxl-z"));
    }

    #[test]
    fn shard_parsing_and_ownership() {
        assert_eq!(Shard::parse("0/2"), Some(Shard { index: 0, count: 2 }));
        assert_eq!(Shard::parse("1/2"), Some(Shard { index: 1, count: 2 }));
        assert_eq!(Shard::parse("2/2"), None, "index must be < count");
        assert_eq!(Shard::parse("0/0"), None);
        assert_eq!(Shard::parse("x/2"), None);
        assert_eq!(Shard::parse("1"), None);
        let s0 = Shard::parse("0/3").expect("shard");
        let s1 = Shard::parse("1/3").expect("shard");
        let s2 = Shard::parse("2/3").expect("shard");
        for i in 0..30 {
            let owners = [s0, s1, s2].iter().filter(|s| s.owns(i)).count();
            assert_eq!(owners, 1, "cell {i} owned exactly once");
        }
        assert_eq!(Shard::full().to_string(), "0/1");
    }

    #[test]
    fn campaign_runs_and_journal_resumes() {
        let spec = tiny_spec();
        let mut j = Journal::in_memory();
        let a = run_campaign(&spec, Shard::full(), &mut j, None, &CellPolicy::default())
            .expect("campaign");
        assert_eq!(a.report.rows.len(), 2);
        assert!(a.report.errors.is_empty(), "{:?}", a.report.errors);
        assert_eq!(j.len(), 2);
        assert_eq!(a.stats.owned, 2);
        assert_eq!(a.stats.simulated, 2);
        assert_eq!(a.stats.journal_hits, 0);
        // Rerun restores everything from the journal, byte-identically.
        let b = run_campaign(&spec, Shard::full(), &mut j, None, &CellPolicy::default())
            .expect("campaign");
        assert_eq!(
            serde_json::to_string(&a.report).expect("a"),
            serde_json::to_string(&b.report).expect("b"),
        );
        assert_eq!(b.stats.journal_hits, 2);
        assert_eq!(b.stats.simulated, 0);
        assert!(a.report.render().contains("campaign summary"));
        assert!(b.stats.render().contains("2 journal"));
    }

    #[test]
    fn cancellation_interrupts_and_resume_completes() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let spec = tiny_spec();
        // Reference: an uninterrupted run.
        let mut j_ref = Journal::in_memory();
        let reference = run_campaign(
            &spec,
            Shard::full(),
            &mut j_ref,
            None,
            &CellPolicy::default(),
        )
        .expect("reference campaign");

        // Interrupted run: the token is already raised, so with the
        // worker pool at any width at least zero cells run and the rest
        // are reported cancelled, never failed.
        let token = Arc::new(AtomicBool::new(true));
        let policy = CellPolicy::default().with_cancel(token.clone());
        let mut j = Journal::in_memory();
        let drained =
            run_campaign(&spec, Shard::full(), &mut j, None, &policy).expect("drained campaign");
        assert!(drained.report.errors.is_empty(), "cancelled != failed");
        assert_eq!(drained.stats.cancelled, 2);
        assert_eq!(drained.stats.simulated, 0);

        // Restart (token lowered) finishes the remaining cells and the
        // final report is byte-identical to the uninterrupted run.
        token.store(false, std::sync::atomic::Ordering::Relaxed);
        let resumed =
            run_campaign(&spec, Shard::full(), &mut j, None, &policy).expect("resumed campaign");
        assert_eq!(
            serde_json::to_string(&reference.report).expect("ref"),
            serde_json::to_string(&resumed.report).expect("resumed"),
        );
    }
}
