//! Append-only checkpoint journal for resumable sweeps.
//!
//! Long experiment sweeps record each finished cell here as one JSON
//! line `{"key": ..., "json": ...}`; a killed sweep restarted with
//! `--resume` loads the journal, skips every journaled cell, and
//! produces byte-identical final output (cell payloads round-trip
//! through JSON exactly: Rust's shortest-roundtrip float formatting
//! guarantees `parse(format(x)) == x`).
//!
//! Robustness properties:
//!
//! - **Torn tail tolerated**: a process killed mid-append leaves a
//!   truncated final line, which is dropped on load (that cell simply
//!   re-runs). Corruption anywhere *else* is an error — it means the
//!   file is not a journal this code wrote.
//! - **Order-free**: entries are keyed, so concurrent workers may append
//!   in any order; resume semantics never depend on file position.
//! - **Last write wins**: re-recording a key replaces the loaded value,
//!   matching what a re-run of that cell would produce.

use std::collections::BTreeMap;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

/// One journal line: a cell key plus its serialized payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct JournalLine {
    /// Cell identity (e.g. `"CXL-C|crc-storm|Smoke"`).
    key: String,
    /// The cell's result, JSON-encoded by the experiment driver.
    json: String,
}

/// A keyed, append-only store of completed cell results.
///
/// With a backing path, every [`record`](Journal::record) appends and
/// flushes one line so progress survives a kill at any point. Without
/// one (in-memory mode) the journal only canonicalises results through
/// the same JSON round-trip, keeping journaled and journal-free runs
/// byte-identical.
#[derive(Debug)]
pub struct Journal {
    path: Option<PathBuf>,
    entries: BTreeMap<String, String>,
    torn: u32,
}

impl Journal {
    /// An in-memory journal (no persistence; same round-trip semantics).
    pub fn in_memory() -> Self {
        Self {
            path: None,
            entries: BTreeMap::new(),
            torn: 0,
        }
    }

    /// Opens (creating if absent) a journal file and loads its entries.
    ///
    /// A truncated final line — the signature of a mid-append kill — is
    /// dropped and counted ([`torn_lines`](Journal::torn_lines)) so
    /// `--resume` callers can warn instead of aborting. Unparseable
    /// content before the final line is an
    /// [`io::ErrorKind::InvalidData`] error.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut entries = BTreeMap::new();
        let mut torn = 0;
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let lines: Vec<&str> = text.lines().collect();
                for (i, line) in lines.iter().enumerate() {
                    if line.trim().is_empty() {
                        continue;
                    }
                    match serde_json::from_str::<JournalLine>(line) {
                        Ok(l) => {
                            entries.insert(l.key, l.json);
                        }
                        Err(_) if i + 1 == lines.len() => {
                            // Torn tail from a kill mid-append: the cell
                            // re-runs. Counted, not an error.
                            torn += 1;
                        }
                        Err(e) => {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("journal {} line {}: {e:?}", path.display(), i + 1),
                            ));
                        }
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(Self {
            path: Some(path),
            entries,
            torn,
        })
    }

    /// Number of truncated trailing records dropped at load time (0 or
    /// 1 for a journal this code wrote; each dropped record's cell
    /// simply re-runs). Resume paths surface this as a counted warning.
    pub fn torn_lines(&self) -> u32 {
        self.torn
    }

    /// The backing file path, if this journal is persistent.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// The payload recorded for `key`, if any.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    /// Iterates all `(key, payload)` entries in key order (used to
    /// backfill a result cache from a finished journal).
    pub fn entries(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of journaled cells.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been journaled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records a finished cell: stores it in memory and (when backed by
    /// a file) appends + flushes one line.
    pub fn record(&mut self, key: &str, json: &str) -> io::Result<()> {
        let _span = melody_telemetry::span("journal.record");
        if melody_telemetry::metrics_on() {
            melody_telemetry::count("journal.records", 1);
            melody_telemetry::record_ns("journal.bytes", json.len() as u64);
        }
        if let Some(path) = &self.path {
            let line = serde_json::to_string(&JournalLine {
                key: key.to_string(),
                json: json.to_string(),
            })
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            f.write_all(line.as_bytes())?;
            f.write_all(b"\n")?;
            f.flush()?;
        }
        self.entries.insert(key.to_string(), json.to_string());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("melody-journal-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn roundtrips_entries_across_reopen() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = Journal::open(&path).expect("open fresh");
            assert!(j.is_empty());
            j.record("a|x", "{\"v\":1}").expect("record");
            j.record("b|y", "{\"v\":2.5}").expect("record");
        }
        let j = Journal::open(&path).expect("reopen");
        assert_eq!(j.len(), 2);
        assert_eq!(j.get("a|x"), Some("{\"v\":1}"));
        assert_eq!(j.get("b|y"), Some("{\"v\":2.5}"));
        assert_eq!(j.get("missing"), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_trailing_line_is_dropped() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = Journal::open(&path).expect("open");
            j.record("done", "{}").expect("record");
        }
        // Simulate a kill mid-append: a truncated second line.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .expect("append");
            f.write_all(b"{\"key\":\"half").expect("write");
        }
        let j = Journal::open(&path).expect("open tolerates torn tail");
        assert_eq!(j.len(), 1);
        assert_eq!(j.get("done"), Some("{}"));
        assert_eq!(j.torn_lines(), 1, "the dropped record is counted");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncating_a_record_mid_append_recovers_prior_entries() {
        // Regression: crash mid-append at *any* byte offset of the final
        // record must never abort the resume — only drop that record.
        let path = tmp("torn-offsets");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = Journal::open(&path).expect("open");
            j.record("k0", "{\"v\":0}").expect("record");
            j.record("k1", "{\"v\":1}").expect("record");
        }
        let full = std::fs::read(&path).expect("read journal");
        // The boundary after the first record's trailing newline.
        let first_end = full
            .iter()
            .position(|b| *b == b'\n')
            .expect("first newline")
            + 1;
        for cut in first_end + 1..full.len() {
            std::fs::write(&path, &full[..cut]).expect("truncate");
            let j = Journal::open(&path)
                .unwrap_or_else(|e| panic!("truncation at byte {cut} must not abort resume: {e}"));
            assert_eq!(j.get("k0"), Some("{\"v\":0}"), "cut at {cut}");
            if j.len() == 1 {
                assert_eq!(j.torn_lines(), 1, "cut at {cut} drops one record");
            } else {
                // The cut landed exactly on the full second record.
                assert_eq!(j.get("k1"), Some("{\"v\":1}"));
                assert_eq!(j.torn_lines(), 0);
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mid_file_corruption_is_an_error() {
        let path = tmp("corrupt");
        std::fs::write(&path, "not json at all\n{\"key\":\"k\",\"json\":\"{}\"}\n").expect("write");
        let err = Journal::open(&path).expect_err("corruption before tail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn entries_iterate_in_key_order() {
        let mut j = Journal::in_memory();
        j.record("b", "2").expect("record");
        j.record("a", "1").expect("record");
        let all: Vec<(&str, &str)> = j.entries().collect();
        assert_eq!(all, vec![("a", "1"), ("b", "2")]);
    }

    #[test]
    fn rerecord_replaces() {
        let mut j = Journal::in_memory();
        j.record("k", "1").expect("record");
        j.record("k", "2").expect("record");
        assert_eq!(j.len(), 1);
        assert_eq!(j.get("k"), Some("2"));
    }
}
