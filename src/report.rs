//! Plain-text and JSON reporting helpers.
//!
//! Every experiment harness produces serde-serialisable data plus a
//! human-readable rendition built from these two shapes: [`TableData`]
//! (paper tables, CDF summaries) and [`Series`] (figure curves).

use serde::{Deserialize, Serialize};

/// A named `(x, y)` series — one curve of a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Curve label (e.g. `"CXL-A"`).
    pub name: String,
    /// Points in plot order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            name: name.into(),
            points,
        }
    }

    /// Renders as `name: (x, y) (x, y) ...` with limited precision.
    pub fn render(&self) -> String {
        let pts: Vec<String> = self
            .points
            .iter()
            .map(|(x, y)| format!("({x:.4}, {y:.4})"))
            .collect();
        format!("{}: {}", self.name, pts.join(" "))
    }

    /// Largest y value (0.0 when empty).
    pub fn max_y(&self) -> f64 {
        self.points.iter().map(|p| p.1).fold(0.0, f64::max)
    }

    /// y at the first x `>= x0`, if any.
    pub fn y_at_or_after(&self, x0: f64) -> Option<f64> {
        self.points.iter().find(|(x, _)| *x >= x0).map(|(_, y)| *y)
    }
}

/// A rectangular table with headers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableData {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl TableData {
    /// Creates a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * ncols.saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage string with one decimal.
pub fn pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

/// Builds a RAS-event table from `(device, regime, counters)` rows —
/// the report-side surface of the fault-injection layer's accounting.
pub fn ras_table(
    title: impl Into<String>,
    rows: &[(String, String, melody_mem::RasCounters)],
) -> TableData {
    let mut t = TableData::new(
        title,
        &[
            "device", "regime", "corr", "uncorr", "retrain", "refresh", "thr(us)",
        ],
    );
    for (device, regime, ras) in rows {
        t.push_row(vec![
            device.clone(),
            regime.clone(),
            ras.correctable.to_string(),
            ras.uncorrectable.to_string(),
            ras.retrains.to_string(),
            ras.refresh_storms.to_string(),
            format!("{:.1}", ras.throttle_ns() as f64 / 1_000.0),
        ]);
    }
    t
}

/// Renders a histogram percentile for a report cell: the value when the
/// histogram has samples, `n/a` when it is empty.
///
/// Every render path must go through this (or check `is_empty` itself)
/// rather than formatting `percentile()` of an empty histogram — the
/// raw query would silently print 0 ns, which reads as "instantaneous"
/// instead of "no data".
pub fn percentile_cell(h: &melody_stats::LatencyHistogram, p: f64) -> String {
    if h.is_empty() {
        "n/a".to_string()
    } else {
        h.percentile(p).to_string()
    }
}

/// Serialises any experiment payload to pretty JSON.
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TableData::new("Demo", &["name", "value"]);
        t.push_row(vec!["short".into(), "1".into()]);
        t.push_row(vec!["a-much-longer-name".into(), "23".into()]);
        let s = t.render();
        assert!(s.contains("Demo"));
        assert!(s.contains("a-much-longer-name"));
        // Header row padded to the widest cell.
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].starts_with("name"));
    }

    #[test]
    fn series_helpers() {
        let s = Series::new("x", vec![(1.0, 10.0), (2.0, 30.0), (3.0, 20.0)]);
        assert_eq!(s.max_y(), 30.0);
        assert_eq!(s.y_at_or_after(1.5), Some(30.0));
        assert_eq!(s.y_at_or_after(9.0), None);
        assert!(s.render().contains("(1.0000, 10.0000)"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.125), "12.5%");
    }

    #[test]
    fn percentile_cell_renders_na_for_empty_histograms() {
        let empty = melody_stats::LatencyHistogram::new();
        assert_eq!(percentile_cell(&empty, 99.9), "n/a");
        let mut h = melody_stats::LatencyHistogram::new();
        h.record(250);
        // Non-empty histograms render exactly the raw percentile value,
        // so existing report output stays byte-identical.
        assert_eq!(percentile_cell(&h, 50.0), h.percentile(50.0).to_string());
    }

    #[test]
    fn json_roundtrip() {
        let s = Series::new("a", vec![(0.0, 1.0)]);
        let json = to_json(&s);
        let back: Series = serde_json::from_str(&json).expect("roundtrip");
        assert_eq!(s, back);
    }
}
