//! Integration tests for `melody serve`: backpressure, admission
//! control, typed client errors, graceful drain, and the headline
//! robustness contract — kill-and-restart produces a result
//! byte-identical to an uninterrupted run, with zero re-simulation.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use melody::campaign::{run_campaign, CampaignSpec, Shard};
use melody::exec::CellPolicy;
use melody::journal::Journal;
use melody::server::api::JobStatus;
use melody::server::client::{self, ClientError, RetrySchedule};
use melody::server::{ServeConfig, Server, ServerHandle};

fn tmp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("melody-serve-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// A small 4-cell campaign (1 platform × 2 devices × 2 workloads).
fn tiny_spec_json(name: &str) -> String {
    format!(
        "{{\"name\":\"{name}\",\"platforms\":[\"emr2s\"],\"devices\":[\"numa\",\"cxl-a\"],\
         \"workloads\":[\"605.mcf\",\"541.leela\"],\"mem_refs\":4000}}"
    )
}

fn start(cfg: ServeConfig) -> (ServerHandle, String) {
    let handle = Server::start(cfg).expect("server starts");
    let addr = handle.addr();
    (handle, addr)
}

fn wait_done(addr: &str, job: &str) -> melody::server::api::JobView {
    client::wait(
        addr,
        job,
        Duration::from_millis(25),
        Duration::from_secs(120),
    )
    .expect("job finishes")
}

#[test]
fn submit_execute_fetch_result_roundtrip() {
    let state = tmp_dir("roundtrip");
    let cfg = ServeConfig {
        port: 0,
        state_dir: state.clone(),
        ..Default::default()
    };
    let (handle, addr) = start(cfg);

    let spec_json = tiny_spec_json("serve-roundtrip");
    let reply = client::submit(&addr, &spec_json, Some("ci"), None).expect("submit");
    assert_eq!(reply.status, JobStatus::Queued);
    assert_eq!(reply.total_cells, 4);

    let view = wait_done(&addr, &reply.job_id);
    assert_eq!(view.status, JobStatus::Done);
    assert_eq!(view.client, "ci");
    let stats = view.stats.expect("finished jobs carry stats");
    assert_eq!(stats.owned, 4);
    assert_eq!(stats.simulated, 4, "cold server simulates everything");

    // The served result is byte-identical to a direct engine run.
    let served = client::job_result(&addr, &reply.job_id).expect("result");
    let spec: CampaignSpec = serde_json::from_str(&spec_json).expect("spec");
    let direct = run_campaign(
        &spec,
        Shard::full(),
        &mut Journal::in_memory(),
        None,
        &CellPolicy::default(),
    )
    .expect("direct run");
    let mut expected = melody::report::to_json(&direct.report);
    expected.push('\n');
    assert_eq!(
        String::from_utf8(served).expect("utf8"),
        expected,
        "served result == direct `melody campaign --json` bytes"
    );

    // Health shows the accounting.
    let health = client::health(&addr).expect("health");
    assert_eq!(health.accepted, 1);
    assert_eq!(health.done, 1);

    handle.drain();
    handle.join();
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn backpressure_rejects_typed_busy_and_retry_loop_completes_everything() {
    let state = tmp_dir("backpressure");
    let cfg = ServeConfig {
        port: 0,
        state_dir: state.clone(),
        queue_depth: 1,
        ..Default::default()
    };
    let (handle, addr) = start(cfg);

    // First submission occupies client `ci`'s single slot...
    let first = client::submit(&addr, &tiny_spec_json("bp-0"), Some("ci"), None).expect("submit");
    // ...so an immediate second one gets a typed 429 with a hint.
    let err = client::submit(&addr, &tiny_spec_json("bp-1"), Some("ci"), None)
        .expect_err("queue_depth 1 must reject the second submission");
    match &err {
        ClientError::Busy { retry_after_ms } => {
            let hint = retry_after_ms.expect("busy carries a Retry-After hint");
            assert!(hint >= 500, "hint {hint} ms");
        }
        other => panic!("expected Busy, got {other}"),
    }
    assert!(err.is_transient());
    // A different client has its own bound — not starved by `ci`.
    let other =
        client::submit(&addr, &tiny_spec_json("bp-other"), Some("friend"), None).expect("submit");

    // The retry loop with capped exponential backoff eventually lands
    // the remaining campaigns without losing or duplicating any.
    let schedule = RetrySchedule {
        max_retries: 100,
        base: Duration::from_millis(25),
        cap: Duration::from_millis(250),
    };
    let mut ids = vec![first.job_id.clone(), other.job_id.clone()];
    let mut retried = 0u32;
    for i in 1..3 {
        let (reply, retries) = client::submit_with_retry(
            &addr,
            &tiny_spec_json(&format!("bp-{i}")),
            Some("ci"),
            None,
            &schedule,
        )
        .expect("retry loop lands the submission");
        retried += retries;
        ids.push(reply.job_id);
    }
    assert!(retried > 0, "at least one submission had to wait its turn");

    // No lost or duplicated jobs: every id is distinct and completes.
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), 4, "4 distinct jobs");
    for id in &ids {
        let view = wait_done(&addr, id);
        assert_eq!(view.status, JobStatus::Done, "{id}");
    }
    let health = client::health(&addr).expect("health");
    assert_eq!(health.accepted, 4);
    assert!(health.rejected_busy >= 1, "{health:?}");

    handle.drain();
    handle.join();
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn admission_control_rejects_oversized_campaigns_with_cost() {
    let state = tmp_dir("admission");
    let cfg = ServeConfig {
        port: 0,
        state_dir: state.clone(),
        // 4 detailed cells cost 400; cap below that.
        admission_limit: 399,
        ..Default::default()
    };
    let (handle, addr) = start(cfg);

    let err = client::submit(&addr, &tiny_spec_json("too-big"), Some("ci"), None)
        .expect_err("over-budget campaign is rejected");
    match err {
        ClientError::Rejected {
            status,
            error,
            message,
        } => {
            assert_eq!(status, 422);
            assert_eq!(error, "admission");
            assert!(message.contains("400"), "cost in message: {message}");
            assert!(message.contains("399"), "limit in message: {message}");
        }
        other => panic!("expected Rejected, got {other}"),
    }
    // A fast-tier variant of the same grid costs 4 — admitted.
    let cheap = tiny_spec_json("cheap-enough").replace(
        ",\"mem_refs\":4000}",
        ",\"mem_refs\":4000,\"fidelity\":\"fast\"}",
    );
    let reply = client::submit(&addr, &cheap, Some("ci"), None).expect("fast tier admitted");
    assert_eq!(wait_done(&addr, &reply.job_id).status, JobStatus::Done);
    let health = client::health(&addr).expect("health");
    assert_eq!(health.rejected_admission, 1);

    handle.drain();
    handle.join();
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn client_errors_are_typed_for_bad_specs_and_unknown_jobs() {
    let state = tmp_dir("typed-errors");
    let cfg = ServeConfig {
        port: 0,
        state_dir: state.clone(),
        ..Default::default()
    };
    let (handle, addr) = start(cfg);

    match client::job_status(&addr, "job-999999").expect_err("unknown id") {
        ClientError::UnknownJob(msg) => assert!(msg.contains("job-999999"), "{msg}"),
        other => panic!("expected UnknownJob, got {other}"),
    }
    match client::submit(&addr, "{\"nope\":true}", None, None).expect_err("bad spec") {
        ClientError::Rejected { status, error, .. } => {
            assert_eq!(status, 400);
            assert_eq!(error, "bad-spec");
        }
        other => panic!("expected Rejected, got {other}"),
    }
    let unknown_device = tiny_spec_json("bad-device").replace("\"numa\"", "\"flux-capacitor\"");
    match client::submit(&addr, &unknown_device, None, None).expect_err("unknown device") {
        ClientError::Rejected { error, message, .. } => {
            assert_eq!(error, "bad-spec");
            assert!(message.contains("flux-capacitor"), "{message}");
        }
        other => panic!("expected Rejected, got {other}"),
    }
    // Result for a queued-but-unfinished job: typed 409. (Submit, query
    // immediately; even if the tiny job wins the race and finishes, the
    // Ok branch is legal — but an Err must be NotFinished.)
    let reply = client::submit(&addr, &tiny_spec_json("race"), None, None).expect("submit");
    match client::job_result(&addr, &reply.job_id) {
        Ok(_) => {}
        Err(ClientError::NotFinished { status }) => {
            assert!(!status.is_empty());
        }
        Err(other) => panic!("expected NotFinished, got {other}"),
    }
    wait_done(&addr, &reply.job_id);

    handle.drain();
    handle.join();
    let _ = std::fs::remove_dir_all(&state);
}

/// The headline contract: drain a server mid-campaign, restart it on
/// the same state dir, and the job completes with a result
/// byte-identical to an uninterrupted run — journaled cells restore,
/// nothing re-simulates twice.
#[test]
fn drain_and_restart_resumes_byte_identically_with_zero_resimulation() {
    let state = tmp_dir("drain-restart");
    let cache = tmp_dir("drain-restart-cache");
    let spec_json = tiny_spec_json("drain-restart");
    let spec: CampaignSpec = serde_json::from_str(&spec_json).expect("spec");

    // Reference: an uninterrupted direct run.
    let reference = run_campaign(
        &spec,
        Shard::full(),
        &mut Journal::in_memory(),
        None,
        &CellPolicy::default(),
    )
    .expect("reference run");
    let mut expected = melody::report::to_json(&reference.report);
    expected.push('\n');

    // Server #1: submit, then drain while it works.
    let cfg = ServeConfig {
        port: 0,
        state_dir: state.clone(),
        cache_dir: Some(cache.clone()),
        ..Default::default()
    };
    let (handle, addr) = start(cfg.clone());
    let reply = client::submit(&addr, &spec_json, Some("ci"), None).expect("submit");
    let job = reply.job_id.clone();
    // Let it make *some* progress (first journal line), then drain —
    // exercising the interrupted path rather than racing pure luck.
    let journal_path = state.join("jobs").join(format!("{job}.journal.jsonl"));
    let begin = Instant::now();
    while begin.elapsed() < Duration::from_secs(60) {
        if std::fs::metadata(&journal_path)
            .map(|m| m.len() > 0)
            .unwrap_or(false)
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    handle.drain();
    handle.join();

    // After the drain the job is either Interrupted (cells were still
    // pending) or Done (it squeaked through); both must converge after
    // restart. Inspect the persisted record via a fresh server.
    let (handle2, addr2) = start(cfg);
    let view = wait_done(&addr2, &job);
    assert_eq!(view.status, JobStatus::Done, "restart completes the job");
    let stats = view.stats.expect("stats");
    assert_eq!(
        stats.journal_hits + stats.cache_hits + stats.simulated,
        stats.owned,
        "all cells accounted for: {stats:?}"
    );

    let served = client::job_result(&addr2, &job).expect("result");
    assert_eq!(
        String::from_utf8(served).expect("utf8"),
        expected,
        "post-restart result is byte-identical to an uninterrupted run"
    );

    // Second restart re-serves the finished result without re-queueing.
    handle2.drain();
    handle2.join();
    let (handle3, addr3) = start(ServeConfig {
        port: 0,
        state_dir: state.clone(),
        cache_dir: Some(cache.clone()),
        ..Default::default()
    });
    let view = client::job_status(&addr3, &job).expect("status after restart");
    assert_eq!(view.status, JobStatus::Done);
    let served_again = client::job_result(&addr3, &job).expect("result persists");
    assert_eq!(String::from_utf8(served_again).expect("utf8"), expected);
    handle3.drain();
    handle3.join();

    let _ = std::fs::remove_dir_all(&state);
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn draining_server_rejects_new_submissions_but_answers_status() {
    let state = tmp_dir("draining-rejects");
    let cfg = ServeConfig {
        port: 0,
        state_dir: state.clone(),
        ..Default::default()
    };
    let (handle, addr) = start(cfg);
    let reply = client::submit(&addr, &tiny_spec_json("pre-drain"), None, None).expect("submit");
    wait_done(&addr, &reply.job_id);

    // POST /v1/drain over the wire (what `melody drain` sends).
    client::drain(&addr).expect("drain accepted");
    match client::submit(&addr, &tiny_spec_json("post-drain"), None, None) {
        Err(ClientError::Draining) => {}
        // The accept loop may already have shut down — also a valid
        // refusal, just less polite.
        Err(ClientError::Unreachable(_)) => {}
        other => panic!("draining server must not accept work: {other:?}"),
    }
    handle.join();
    let _ = std::fs::remove_dir_all(&state);
}

/// End-to-end acceptance: SIGTERM the real `melody serve` binary
/// mid-campaign, restart it on the same state dir, and the served
/// result is byte-identical to a direct `melody campaign --json` run.
#[cfg(unix)]
#[test]
fn sigterm_kill_and_restart_serves_bytes_identical_to_direct_run() {
    use std::io::{BufRead, BufReader};
    use std::process::{Child, Command, Stdio};

    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }

    let melody = env!("CARGO_BIN_EXE_melody");
    let state = tmp_dir("proc-state");
    let cache = tmp_dir("proc-cache");
    std::fs::create_dir_all(&state).expect("mkdir");
    let spec_path = state.join("spec.json");
    // Eight detailed cells: enough runway for the SIGTERM to land
    // mid-campaign (the test still holds if the job wins the race).
    let spec_json = "{\"name\":\"proc-kill\",\"platforms\":[\"emr2s\"],\
                     \"devices\":[\"local\",\"numa\",\"cxl-a\",\"cxl-b\"],\
                     \"workloads\":[\"605.mcf\",\"541.leela\"],\"mem_refs\":20000}";
    std::fs::write(&spec_path, spec_json).expect("write spec");

    // Reference bytes from the binary itself, cache-free.
    let direct = Command::new(melody)
        .args([
            "campaign",
            spec_path.to_str().expect("utf8"),
            "--json",
            "--no-cache",
        ])
        .output()
        .expect("direct campaign run");
    assert!(
        direct.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&direct.stderr)
    );

    let spawn_server = || -> (Child, String) {
        let mut child = Command::new(melody)
            .args([
                "serve",
                "--port",
                "0",
                "--state-dir",
                state.to_str().expect("utf8"),
                "--cache",
                cache.to_str().expect("utf8"),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn melody serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut banner = String::new();
        BufReader::new(stdout)
            .read_line(&mut banner)
            .expect("read banner");
        let addr = banner
            .trim()
            .strip_prefix("melody-serve: listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
            .to_string();
        (child, addr)
    };

    // Leg 1: submit, wait for the first journaled cell, SIGTERM.
    let (mut child, addr) = spawn_server();
    let reply = client::submit(&addr, spec_json, Some("ci"), None).expect("submit");
    let job = reply.job_id.clone();
    assert_eq!(reply.total_cells, 8);
    let journal_path = state.join("jobs").join(format!("{job}.journal.jsonl"));
    let begin = Instant::now();
    while begin.elapsed() < Duration::from_secs(120) {
        if std::fs::metadata(&journal_path)
            .map(|m| m.len() > 0)
            .unwrap_or(false)
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    unsafe {
        assert_eq!(kill(child.id() as i32, 15), 0, "SIGTERM delivered");
    }
    let status = child.wait().expect("child exits");
    assert!(status.success(), "graceful drain exits 0: {status:?}");

    // Leg 2: restart on the same state dir; the job must converge.
    let (mut child2, addr2) = spawn_server();
    let view = client::wait(
        &addr2,
        &job,
        Duration::from_millis(50),
        Duration::from_secs(120),
    )
    .expect("job finishes after restart");
    assert_eq!(view.status, JobStatus::Done, "{view:?}");
    let stats = view.stats.expect("stats");
    assert_eq!(
        stats.journal_hits + stats.cache_hits + stats.simulated,
        stats.owned,
        "every cell restored or simulated exactly once: {stats:?}"
    );

    let served = client::job_result(&addr2, &job).expect("result");
    assert_eq!(
        String::from_utf8(served).expect("utf8"),
        String::from_utf8(direct.stdout.clone()).expect("utf8"),
        "served result == direct `melody campaign --json` bytes"
    );

    client::drain(&addr2).expect("drain");
    let status2 = child2.wait().expect("second server exits");
    assert!(status2.success());
    let _ = std::fs::remove_dir_all(&state);
    let _ = std::fs::remove_dir_all(&cache);
}
