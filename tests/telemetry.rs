//! Integration tests for the telemetry layer: histogram merge algebra,
//! ring-buffer overflow, span nesting, trace determinism across worker
//! counts, and simulation-identity with instrumentation on vs off.
//!
//! Telemetry mode and the worker-pool size are process-global, so every
//! test that touches them serializes on [`GATE`] and restores the
//! defaults before releasing it.

use std::sync::Mutex;

use melody::prelude::*;
use melody_stats::LatencyHistogram;
use melody_telemetry::{
    collect, reset, set_mode, EventKind, MetricsRegistry, Mode, SpanStack, TraceBuf,
};

/// Serializes tests that mutate process-global telemetry/exec state.
static GATE: Mutex<()> = Mutex::new(());

fn hist_of(values: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

#[test]
fn histogram_merge_is_associative_and_commutative() {
    let a = hist_of(&[1, 50, 900]);
    let b = hist_of(&[7, 7, 120_000]);
    let c = hist_of(&[3_000_000, 12]);

    // (a ⊕ b) ⊕ c
    let mut left = a.clone();
    left.merge(&b);
    left.merge(&c);
    // a ⊕ (b ⊕ c)
    let mut bc = b.clone();
    bc.merge(&c);
    let mut right = a.clone();
    right.merge(&bc);
    // c ⊕ b ⊕ a (commuted)
    let mut rev = c.clone();
    rev.merge(&b);
    rev.merge(&a);

    for h in [&right, &rev] {
        assert_eq!(left.count(), h.count());
        assert_eq!(left.min(), h.min());
        assert_eq!(left.max(), h.max());
        for p in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(left.percentile(p), h.percentile(p));
        }
    }
}

#[test]
fn metrics_registry_merge_is_associative() {
    let reg = |k: &'static str, n: u64| {
        let mut r = MetricsRegistry::default();
        r.count(k, n);
        r.record(k, n * 10);
        r.gauge(k, 10_000_000, n * 1_000_000, n as f64);
        r
    };
    let (a, b, c) = (reg("x", 1), reg("y", 2), reg("x", 3));

    let mut left = a.clone();
    left.merge(&b);
    left.merge(&c);
    let mut bc = b.clone();
    bc.merge(&c);
    let mut right = a.clone();
    right.merge(&bc);

    assert_eq!(
        serde_json::to_string(&left).unwrap(),
        serde_json::to_string(&right).unwrap()
    );
}

#[test]
fn ring_buffer_overflow_drops_oldest_and_counts() {
    let mut buf = TraceBuf::with_capacity(4);
    for i in 0..7u64 {
        buf.push(melody_telemetry::TraceEvent {
            ts_ps: i,
            dur_ps: 0,
            kind: EventKind::CellStart,
            a: i,
            b: 0,
        });
    }
    assert_eq!(buf.len(), 4);
    assert_eq!(buf.dropped(), 3);
    // The three oldest events (ts 0..=2) are gone; iteration is oldest
    // surviving first.
    let ts: Vec<u64> = buf.iter().map(|e| e.ts_ps).collect();
    assert_eq!(ts, vec![3, 4, 5, 6]);
}

#[test]
fn span_nesting_credits_self_and_child_time() {
    let mut stack = SpanStack::default();
    let outer = stack.enter("outer");
    let inner = stack.enter("inner");
    std::thread::sleep(std::time::Duration::from_millis(2));
    stack.exit(inner);
    stack.exit(outer);

    let outer_stat = stack.profile.spans["outer"];
    let inner_stat = stack.profile.spans["inner"];
    assert_eq!(outer_stat.count, 1);
    assert_eq!(inner_stat.count, 1);
    // All of inner's time is self time; outer's self time excludes it.
    assert_eq!(inner_stat.total_ns, inner_stat.self_ns);
    assert!(outer_stat.total_ns >= inner_stat.total_ns);
    assert!(outer_stat.self_ns <= outer_stat.total_ns - inner_stat.total_ns);
}

fn small_population() -> Vec<PairOutcome> {
    let workloads: Vec<_> = registry::all().into_iter().take(3).collect();
    run_population_par(
        &Platform::emr2s(),
        &presets::local_emr(),
        &presets::cxl_b(),
        &workloads,
        &RunOptions {
            mem_refs: 4_000,
            ..Default::default()
        },
    )
}

#[test]
fn trace_is_byte_identical_across_worker_counts() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let mut exports = Vec::new();
    for jobs in [1, 4] {
        melody::exec::set_jobs(jobs);
        set_mode(Mode::Trace);
        let _ = small_population();
        set_mode(Mode::Off);
        let collected = collect();
        assert!(collected.events.len() > 100, "trace should have events");
        exports.push(collected.chrome_trace());
    }
    melody::exec::set_jobs(0);
    reset();
    assert_eq!(exports[0], exports[1], "trace must not depend on --jobs");
}

#[test]
fn telemetry_does_not_perturb_simulation() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    set_mode(Mode::Off);
    reset();
    let off = small_population();
    set_mode(Mode::Trace);
    let on = small_population();
    set_mode(Mode::Off);
    reset();
    for (a, b) in off.iter().zip(&on) {
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.local.counters, b.local.counters);
        assert_eq!(a.target.counters, b.target.counters);
    }
}
