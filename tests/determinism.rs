//! End-to-end determinism: identical inputs produce bit-identical
//! results across the whole stack, and different seeds genuinely differ.

use melody::prelude::*;
use melody_workloads::mlc::{loaded_latency, MlcConfig};

#[test]
fn full_stack_run_is_deterministic() {
    let w = registry::by_name("bfs-web").expect("bfs-web");
    let opts = RunOptions {
        mem_refs: 6_000,
        sample_interval_ns: Some(10_000),
        ..Default::default()
    };
    let a = run_pair(
        &Platform::emr2s(),
        &presets::local_emr(),
        &presets::cxl_c(),
        &w,
        &opts,
    );
    let b = run_pair(
        &Platform::emr2s(),
        &presets::local_emr(),
        &presets::cxl_c(),
        &w,
        &opts,
    );
    assert_eq!(a.local.counters, b.local.counters);
    assert_eq!(a.target.counters, b.target.counters);
    assert_eq!(a.local.samples.len(), b.local.samples.len());
    assert_eq!(
        a.target.demand_lat_hist.percentile(99.9),
        b.target.demand_lat_hist.percentile(99.9)
    );
}

#[test]
fn parallel_population_is_byte_identical_to_serial() {
    // The parallel experiment engine's contract: run_population_par
    // produces the same values in the same order as the serial
    // run_population, for any worker count. Compare full serialized
    // outcomes (counters, histograms, samples — everything) across
    // several workloads and two device pairs.
    let workloads: Vec<_> = ["bfs-web", "605.mcf", "520.omnetpp"]
        .iter()
        .map(|n| registry::by_name(n).unwrap_or_else(|| panic!("workload {n}")))
        .collect();
    let opts = RunOptions {
        mem_refs: 4_000,
        sample_interval_ns: Some(10_000),
        ..Default::default()
    };
    let platform = Platform::emr2s();
    for target in [presets::cxl_a(), presets::cxl_c()] {
        let serial = run_population(&platform, &presets::local_emr(), &target, &workloads, &opts);
        for jobs in [1, 2, 5] {
            melody::exec::set_jobs(jobs);
            let par =
                run_population_par(&platform, &presets::local_emr(), &target, &workloads, &opts);
            melody::exec::set_jobs(0);
            assert_eq!(
                serde_json::to_string(&serial).expect("serialize serial"),
                serde_json::to_string(&par).expect("serialize parallel"),
                "parallel ({jobs} jobs) vs serial mismatch on {}",
                target.name()
            );
        }
    }
}

#[test]
fn inert_fault_config_is_byte_identical_to_baseline_across_jobs() {
    // The fault layer's zero-cost contract: a device carrying an
    // all-zero (inert) FaultConfig attaches no schedule, draws nothing
    // from any RNG stream, and serializes byte-identically to the
    // pre-fault baseline — at any worker count.
    let workloads: Vec<_> = ["bfs-web", "605.mcf"]
        .iter()
        .map(|n| registry::by_name(n).unwrap_or_else(|| panic!("workload {n}")))
        .collect();
    let opts = RunOptions {
        mem_refs: 4_000,
        ..Default::default()
    };
    let platform = Platform::emr2s();
    let baseline = presets::cxl_c();
    let inert = presets::cxl_c().with_faults(melody_mem::FaultConfig::none());
    let reference = serde_json::to_string(&run_population(
        &platform,
        &presets::local_emr(),
        &baseline,
        &workloads,
        &opts,
    ))
    .expect("serialize baseline");
    for jobs in [1, 4] {
        melody::exec::set_jobs(jobs);
        let got = run_population_par(&platform, &presets::local_emr(), &inert, &workloads, &opts);
        melody::exec::set_jobs(0);
        assert_eq!(
            reference,
            serde_json::to_string(&got).expect("serialize inert"),
            "inert faults must be invisible at {jobs} jobs"
        );
    }
}

#[test]
fn fault_regime_is_byte_identical_across_worker_counts() {
    // Fixed seed + fixed fault regime → one fault timeline, regardless
    // of how the sweep is fanned out.
    let workloads: Vec<_> = ["bfs-web", "605.mcf", "519.lbm"]
        .iter()
        .map(|n| registry::by_name(n).unwrap_or_else(|| panic!("workload {n}")))
        .collect();
    let opts = RunOptions {
        mem_refs: 4_000,
        ..Default::default()
    };
    let platform = Platform::emr2s();
    let target = presets::cxl_c().with_faults(melody_mem::FaultConfig::harsh());
    let mut outputs = Vec::new();
    for jobs in [1, 4] {
        melody::exec::set_jobs(jobs);
        let got = run_population_par(&platform, &presets::local_emr(), &target, &workloads, &opts);
        melody::exec::set_jobs(0);
        // The regime must actually fire, or this test guards nothing.
        assert!(
            got.iter().any(|o| !o.target.device_stats.ras.is_zero()),
            "harsh regime must produce RAS events"
        );
        outputs.push(serde_json::to_string(&got).expect("serialize"));
    }
    assert_eq!(outputs[0], outputs[1], "1 job vs 4 jobs under faults");
}

#[test]
fn different_seed_changes_stochastic_outcomes() {
    let w = registry::by_name("bfs-web").expect("bfs-web");
    let mk = |seed| RunOptions {
        mem_refs: 6_000,
        seed,
        ..Default::default()
    };
    let a = run_workload(&Platform::emr2s(), &presets::cxl_c(), &w, &mk(1));
    let b = run_workload(&Platform::emr2s(), &presets::cxl_c(), &w, &mk(2));
    assert_ne!(
        a.counters.cycles, b.counters.cycles,
        "different seeds should perturb the run"
    );
}

#[test]
fn mlc_deterministic() {
    let cfg = MlcConfig {
        total_requests: 10_000,
        ..MlcConfig::default()
    };
    let a = loaded_latency(&presets::cxl_b(), &cfg);
    let b = loaded_latency(&presets::cxl_b(), &cfg);
    assert_eq!(a.latency.percentile(99.9), b.latency.percentile(99.9));
    assert_eq!(a.bandwidth_gbps, b.bandwidth_gbps);
}

#[test]
fn mio_deterministic() {
    let cfg = melody_mio::MioConfig {
        accesses: 8_000,
        noise_threads: 3,
        ..Default::default()
    };
    let a = melody_mio::run(&presets::cxl_c(), &cfg);
    let b = melody_mio::run(&presets::cxl_c(), &cfg);
    assert_eq!(a.tail_gap_ns, b.tail_gap_ns);
    assert_eq!(a.bandwidth_gbps, b.bandwidth_gbps);
}

#[test]
fn registry_and_streams_are_stable() {
    let r1 = registry::all();
    let r2 = registry::all();
    assert_eq!(r1, r2);
    let w = &r1[17];
    let s1: Vec<_> = SlotStream::new(w, 7, 500).collect();
    let s2: Vec<_> = SlotStream::new(w, 7, 500).collect();
    assert_eq!(s1, s2);
}
