//! Differential and fuzz tests for the campaign engine and its
//! content-addressed result cache: warm, cold, resumed and sharded runs
//! must serialize byte-identically; config changes must re-simulate
//! exactly the changed cells; corrupted cache entries must degrade to
//! misses, never panics.

use melody::cache::{fingerprint, ResultCache};
use melody::campaign::{run_campaign, CampaignReport, CampaignSpec, Shard};
use melody::exec::CellPolicy;
use melody::journal::Journal;
use melody_sim::SimRng;

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("melody-campaign-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn tiny_spec() -> CampaignSpec {
    CampaignSpec {
        name: "tiny".into(),
        platforms: vec!["emr2s".into()],
        devices: vec!["numa".into(), "cxl-a".into()],
        workloads: vec!["605.mcf".into(), "541.leela".into()],
        faults: vec![],
        scale: None,
        mem_refs: Some(4_000),
        seed: None,
        fidelity: None,
        sample_warmup: None,
        sample_window: None,
        sample_period: None,
        topologies: vec![],
        policies: vec![],
        page_bytes: None,
        migrate_budget_gbps: None,
    }
}

/// A host with `n` expanders of device class `device`, as the campaign
/// JSON layer would parse it.
fn topology(name: &str, device: &str, n: usize) -> melody_mem::TopologySpec {
    let mut nodes = vec![r#"{"id": "h", "kind": "host"}"#.to_string()];
    let mut edges = Vec::new();
    for i in 0..n {
        nodes.push(format!(
            r#"{{"id": "e{i}", "kind": "expander", "device": "{device}"}}"#
        ));
        edges.push(format!(r#"{{"from": "h", "to": "e{i}"}}"#));
    }
    let json = format!(
        r#"{{"name": "{name}", "nodes": [{}], "edges": [{}]}}"#,
        nodes.join(", "),
        edges.join(", ")
    );
    serde_json::from_str(&json).expect("valid topology JSON")
}

fn run(spec: &CampaignSpec, shard: Shard, cache: Option<&ResultCache>) -> CampaignReport {
    let mut j = Journal::in_memory();
    let r = run_campaign(spec, shard, &mut j, cache, &CellPolicy::default())
        .expect("campaign")
        .report;
    assert!(r.errors.is_empty(), "{:?}", r.errors);
    r
}

fn to_json(r: &CampaignReport) -> String {
    serde_json::to_string(r).expect("report serializes")
}

#[test]
fn warm_run_is_byte_identical_to_cold_and_fully_cached() {
    let dir = tmp_dir("warmcold");
    let spec = tiny_spec();

    let no_cache = run(&spec, Shard::full(), None);
    let cold_cache = ResultCache::open(&dir).expect("open");
    let cold = run(&spec, Shard::full(), Some(&cold_cache));
    assert_eq!(cold_cache.stats().hits, 0);
    assert_eq!(cold_cache.stats().misses, 4);

    // Fresh handle on the same directory: all four cells load warm.
    let warm_cache = ResultCache::open(&dir).expect("reopen");
    let warm = run(&spec, Shard::full(), Some(&warm_cache));
    assert_eq!(warm_cache.stats().hits, 4, "{:?}", warm_cache.stats());
    assert_eq!(warm_cache.stats().misses, 0);
    assert!((warm_cache.stats().hit_rate() - 1.0).abs() < 1e-12);

    assert_eq!(
        to_json(&no_cache),
        to_json(&cold),
        "cache must not perturb output"
    );
    assert_eq!(
        to_json(&cold),
        to_json(&warm),
        "warm == cold, byte for byte"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fidelity_is_part_of_cell_identity() {
    // A cache populated by a sampled (or fast) campaign must never serve
    // a detailed request, and vice versa: fidelity and the sampling
    // schedule are inside the cell fingerprint.
    let dir = tmp_dir("fidelity-keys");
    let detailed = tiny_spec();
    let sampled = CampaignSpec {
        fidelity: Some("sampled".into()),
        ..tiny_spec()
    };
    let fast = CampaignSpec {
        fidelity: Some("fast".into()),
        ..tiny_spec()
    };

    let cache = ResultCache::open(&dir).expect("open");
    let _ = run(&sampled, Shard::full(), Some(&cache));
    assert_eq!(cache.stats().misses, 4, "cold sampled run misses all");

    // Detailed request against the sampled-populated cache: all misses.
    let c2 = ResultCache::open(&dir).expect("reopen");
    let _ = run(&detailed, Shard::full(), Some(&c2));
    assert_eq!(
        c2.stats().hits,
        0,
        "a sampled cell must never satisfy a detailed request"
    );
    assert_eq!(c2.stats().misses, 4);

    // Fast request likewise shares no keys with either prior tier.
    let c3 = ResultCache::open(&dir).expect("reopen");
    let _ = run(&fast, Shard::full(), Some(&c3));
    assert_eq!(c3.stats().hits, 0, "fast keys are distinct too");

    // A different sampling schedule is a different result: no hits even
    // at the same tier.
    let c4 = ResultCache::open(&dir).expect("reopen");
    let resampled = CampaignSpec {
        sample_window: Some(4096),
        ..sampled.clone()
    };
    let _ = run(&resampled, Shard::full(), Some(&c4));
    assert_eq!(c4.stats().hits, 0, "schedule change must re-simulate");

    // And each tier is a warm hit for itself.
    let c5 = ResultCache::open(&dir).expect("reopen");
    let again = run(&sampled, Shard::full(), Some(&c5));
    assert_eq!(c5.stats().hits, 4, "{:?}", c5.stats());
    assert_eq!(again.rows.len(), 4);

    // Cell keys differ pairwise across tiers at expansion time as well.
    let kd: Vec<_> = detailed
        .expand()
        .expect("expand")
        .into_iter()
        .map(|c| c.key)
        .collect();
    let ks: Vec<_> = sampled
        .expand()
        .expect("expand")
        .into_iter()
        .map(|c| c.key)
        .collect();
    let kf: Vec<_> = fast
        .expand()
        .expect("expand")
        .into_iter()
        .map(|c| c.key)
        .collect();
    for i in 0..kd.len() {
        assert_ne!(kd[i], ks[i]);
        assert_ne!(kd[i], kf[i]);
        assert_ne!(ks[i], kf[i]);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn topology_is_part_of_cell_identity() {
    // Results simulated under one topology must never satisfy a request
    // for another: the lowered device spec (and with it the whole fabric
    // shape) is inside the cell fingerprint.
    let dir = tmp_dir("topology-keys");
    let base = CampaignSpec {
        devices: vec![],
        workloads: vec!["605.mcf".into()],
        ..tiny_spec()
    };
    let two_way = CampaignSpec {
        topologies: vec![topology("fabric", "cxl-b", 2)],
        ..base.clone()
    };
    let single = CampaignSpec {
        topologies: vec![topology("fabric", "cxl-b", 1)],
        ..base.clone()
    };

    let cache = ResultCache::open(&dir).expect("open");
    let _ = run(&two_way, Shard::full(), Some(&cache));
    assert_eq!(cache.stats().misses, 1, "cold 2-way run misses");

    // Same campaign name, same topology *name*, different shape: the
    // single-expander request must not hit the 2-way result.
    let c2 = ResultCache::open(&dir).expect("reopen");
    let _ = run(&single, Shard::full(), Some(&c2));
    assert_eq!(
        c2.stats().hits,
        0,
        "a 2-way cell must never satisfy a 1-way request"
    );

    // The same topology is a warm hit for itself.
    let c3 = ResultCache::open(&dir).expect("reopen");
    let again = run(&two_way, Shard::full(), Some(&c3));
    assert_eq!(c3.stats().hits, 1, "{:?}", c3.stats());
    assert_eq!(again.rows.len(), 1);
    assert_eq!(again.rows[0].device, "fabric");

    // Intentional sharing: the degenerate single-expander topology *is*
    // the plain device keyword — identical key, so a topology run warms
    // the cache for a plain `devices: ["cxl-b"]` run and vice versa.
    let plain = CampaignSpec {
        devices: vec!["cxl-b".into()],
        topologies: vec![],
        ..base.clone()
    };
    assert_eq!(
        plain.expand().expect("expand")[0].key,
        single.expand().expect("expand")[0].key,
        "degenerate topology shares the plain device's cell identity"
    );
    let c4 = ResultCache::open(&dir).expect("reopen");
    let _ = run(&plain, Shard::full(), Some(&c4));
    assert_eq!(
        c4.stats().hits,
        1,
        "plain run warm-hits the degenerate-topology cell"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn policy_is_part_of_cell_identity() {
    // Results simulated under one tiering policy must never satisfy a
    // request for another: the Tiered wrapper (policy, page size,
    // budget) lands in the target DeviceSpec and with it in the cell
    // fingerprint.
    let dir = tmp_dir("policy-keys");
    let base = CampaignSpec {
        devices: vec!["cxl-a".into()],
        workloads: vec!["605.mcf".into()],
        ..tiny_spec()
    };
    let lru = CampaignSpec {
        policies: vec!["lru-hotness".into()],
        ..base.clone()
    };
    let clock = CampaignSpec {
        policies: vec!["clock".into()],
        ..base.clone()
    };

    let cache = ResultCache::open(&dir).expect("open");
    let _ = run(&lru, Shard::full(), Some(&cache));
    assert_eq!(cache.stats().misses, 1, "cold lru run misses");

    // A different policy over the same grid shares no keys.
    let c2 = ResultCache::open(&dir).expect("reopen");
    let _ = run(&clock, Shard::full(), Some(&c2));
    assert_eq!(
        c2.stats().hits,
        0,
        "an lru-hotness cell must never satisfy a clock request"
    );

    // The same policy is a warm hit for itself, and the row names it.
    let c3 = ResultCache::open(&dir).expect("reopen");
    let again = run(&lru, Shard::full(), Some(&c3));
    assert_eq!(c3.stats().hits, 1, "{:?}", c3.stats());
    assert_eq!(again.rows[0].policy, "lru-hotness");

    // Tuning knobs are identity too: a different page size or budget
    // re-simulates.
    let big_pages = CampaignSpec {
        page_bytes: Some(8_192),
        ..lru.clone()
    };
    assert_ne!(
        lru.expand().expect("expand")[0].key,
        big_pages.expand().expect("expand")[0].key,
        "page size must be inside the fingerprint"
    );
    let throttled = CampaignSpec {
        migrate_budget_gbps: Some(2.0),
        ..lru.clone()
    };
    assert_ne!(
        lru.expand().expect("expand")[0].key,
        throttled.expand().expect("expand")[0].key,
        "migration budget must be inside the fingerprint"
    );

    // Intentional sharing: the inert `static` spelling *is* the
    // no-policy cell — identical key, so either spelling warms the
    // cache for the other.
    let statik = CampaignSpec {
        policies: vec!["static".into()],
        ..base.clone()
    };
    assert_eq!(
        base.expand().expect("expand")[0].key,
        statik.expand().expect("expand")[0].key,
        "static spelling shares the no-policy cell identity"
    );
    let c4 = ResultCache::open(&dir).expect("reopen");
    let _ = run(&statik, Shard::full(), Some(&c4));
    assert_eq!(c4.stats().misses, 1, "static cell is new to this cache");
    let c5 = ResultCache::open(&dir).expect("reopen");
    let plain = run(&base, Shard::full(), Some(&c5));
    assert_eq!(
        c5.stats().hits,
        1,
        "a no-policy run warm-hits the static-spelled cell"
    );
    assert_eq!(plain.rows[0].policy, "", "inert spelling lowers to empty");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_runs_merge_byte_identical_to_the_full_run() {
    let dir = tmp_dir("shards");
    let spec = tiny_spec();
    let full = run(&spec, Shard::full(), None);
    assert_eq!(full.rows.len(), 4);

    let cache = ResultCache::open(&dir).expect("open");
    let s0 = run(&spec, Shard::parse("0/2").expect("shard"), Some(&cache));
    let s1 = run(&spec, Shard::parse("1/2").expect("shard"), Some(&cache));
    assert_eq!(s0.total_cells, 4);
    assert_eq!(s0.rows.len() + s1.rows.len(), full.rows.len());

    // Interleave the shard rows back into expansion order (shard i of N
    // owns cells i, i+N, i+2N, ...).
    let mut merged = Vec::new();
    let (mut it0, mut it1) = (s0.rows.iter(), s1.rows.iter());
    for i in 0..full.rows.len() {
        merged.push(
            if i % 2 == 0 {
                it0.next().expect("shard 0 row")
            } else {
                it1.next().expect("shard 1 row")
            }
            .clone(),
        );
    }
    let merged_json = serde_json::to_string(&merged).expect("rows");
    let full_json = serde_json::to_string(&full.rows).expect("rows");
    assert_eq!(
        merged_json, full_json,
        "shard merge must equal the full run"
    );

    // A warm full run over the shard-populated cache is also identical.
    let warm_cache = ResultCache::open(&dir).expect("reopen");
    let warm = run(&spec, Shard::full(), Some(&warm_cache));
    assert_eq!(warm_cache.stats().misses, 0, "shards covered every cell");
    assert_eq!(to_json(&warm), to_json(&full));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn changed_cell_config_re_simulates_exactly_the_new_cells() {
    let dir = tmp_dir("invalidate");
    let spec = tiny_spec();
    let cold = ResultCache::open(&dir).expect("open");
    run(&spec, Shard::full(), Some(&cold));

    // Adding one workload leaves the four existing cells warm and
    // simulates exactly the two new (device × workload) cells.
    let mut grown = tiny_spec();
    grown.workloads.push("bfs-web".into());
    let c = ResultCache::open(&dir).expect("reopen");
    let r = run(&grown, Shard::full(), Some(&c));
    assert_eq!(r.rows.len(), 6);
    assert_eq!(c.stats().hits, 4, "{:?}", c.stats());
    assert_eq!(c.stats().misses, 2, "{:?}", c.stats());

    // Changing a run option (mem_refs) changes every fingerprint: the
    // whole campaign is a miss — a stale-result reuse would be silent
    // wrong answers.
    let mut retuned = tiny_spec();
    retuned.mem_refs = Some(5_000);
    let c2 = ResultCache::open(&dir).expect("reopen");
    run(&retuned, Shard::full(), Some(&c2));
    assert_eq!(c2.stats().hits, 0, "{:?}", c2.stats());
    assert_eq!(c2.stats().misses, 4, "{:?}", c2.stats());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_resume_backfills_the_cache() {
    let dir = tmp_dir("backfill");
    let spec = tiny_spec();

    // First run journals everything but has no cache.
    let mut j = Journal::in_memory();
    let a = run_campaign(&spec, Shard::full(), &mut j, None, &CellPolicy::default())
        .expect("campaign")
        .report;
    assert_eq!(j.len(), 4);

    // Resuming with the journal and an empty cache must not simulate
    // anything — and must seed the cache for journal-free runs.
    let c = ResultCache::open(&dir).expect("open");
    let b = run_campaign(
        &spec,
        Shard::full(),
        &mut j,
        Some(&c),
        &CellPolicy::default(),
    )
    .expect("campaign")
    .report;
    assert_eq!(to_json(&a), to_json(&b));

    let c2 = ResultCache::open(&dir).expect("reopen");
    let mut fresh_journal = Journal::in_memory();
    let d = run_campaign(
        &spec,
        Shard::full(),
        &mut fresh_journal,
        Some(&c2),
        &CellPolicy::default(),
    )
    .expect("campaign")
    .report;
    assert_eq!(c2.stats().misses, 0, "journal hits were backfilled");
    assert_eq!(to_json(&a), to_json(&d));
    let _ = std::fs::remove_dir_all(&dir);
}

/// On-disk entry path mirror of the documented cache layout
/// (`<root>/<key[0..2]>/<key>.json`).
fn entry_path(root: &std::path::Path, key: &str) -> std::path::PathBuf {
    root.join(&key[0..2]).join(format!("{key}.json"))
}

#[test]
fn fuzzed_payloads_roundtrip_byte_identically() {
    let dir = tmp_dir("fuzz-roundtrip");
    let c = ResultCache::open(&dir).expect("open");
    let mut rng = SimRng::seed_from(0xF022);
    for case in 0..200u64 {
        // Randomized cell-result-shaped payloads: nested JSON with the
        // float values a real cell carries (f64s survive Rust's
        // shortest-roundtrip formatting exactly).
        let f1 = f64::from_bits(rng.next_u64() >> 12); // finite by construction
        let f2 = rng.range_f64(-1.0e6, 1.0e6);
        let n = rng.next_u64();
        let s: String = (0..rng.below(20))
            .map(|_| char::from(b'a' + rng.below(26) as u8))
            .collect();
        let payload = format!(
            "{{\"slowdown\":{f1},\"lat\":{f2},\"count\":{n},\"name\":{s:?},\"nested\":[{f1},{f2}]}}"
        );
        let key = fingerprint(&["fuzz", &case.to_string()]);
        c.put(&key, &payload).expect("put");
        let loaded = c.get(&key).expect("hit");
        assert_eq!(loaded, payload, "case {case}: payload must round-trip");
        // Serialize -> deserialize -> re-serialize through the serde
        // Value layer is also byte-stable for these payloads.
        let v: serde::Value = serde_json::from_str(&loaded).expect("valid JSON");
        let re = serde_json::to_string(&v).expect("re-serialize");
        let v2: serde::Value = serde_json::from_str(&re).expect("still valid");
        assert_eq!(
            re,
            serde_json::to_string(&v2).expect("re-serialize"),
            "case {case}: fixpoint after one round-trip"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_cache_entries_are_misses_never_panics() {
    let dir = tmp_dir("fuzz-corrupt");
    let c = ResultCache::open(&dir).expect("open");
    let mut rng = SimRng::seed_from(0xBAD);
    let mut corrupt_seen = 0;
    for case in 0..100u64 {
        let key = fingerprint(&["corrupt", &case.to_string()]);
        c.put(&key, &format!("{{\"case\":{case}}}")).expect("put");
        let path = entry_path(&dir, &key);
        let bytes = std::fs::read(&path).expect("entry exists");
        // Random mutilation: truncate, bit-flip, or replace with noise.
        let mutated: Vec<u8> = match rng.below(3) {
            0 => bytes[..rng.below(bytes.len() as u64) as usize].to_vec(),
            1 => {
                let mut b = bytes.clone();
                let i = rng.below(b.len() as u64) as usize;
                b[i] ^= 1 << rng.below(8);
                b
            }
            _ => (0..bytes.len()).map(|_| rng.next_u64() as u8).collect(),
        };
        std::fs::write(&path, &mutated).expect("write corruption");
        let before = c.stats().corrupt;
        let expected = format!("{{\"case\":{case}}}");
        match c.get(&key) {
            // Invalid entry: counted corrupt, treated as a miss, and a
            // rewrite heals it.
            None => {
                assert_eq!(c.stats().corrupt, before + 1, "case {case}");
                corrupt_seen += 1;
                c.put(&key, &expected).expect("re-put");
                assert_eq!(
                    c.get(&key).as_deref(),
                    Some(expected.as_str()),
                    "case {case}: cache recovers after rewrite"
                );
            }
            // A single bit flip inside the payload *string* can leave a
            // structurally valid envelope with different content — not
            // detectable without checksumming the payload itself. The
            // contract under test is only "never a panic, never a
            // half-parsed entry".
            Some(p) => assert_ne!(p, "", "case {case}: hits carry a payload"),
        }
    }
    assert!(
        corrupt_seen > 40,
        "mutations should usually corrupt: {corrupt_seen}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
