//! Cross-crate validation of the Spa machinery on real simulated runs:
//! counter identities, breakdown conservation, period-analysis
//! consistency, and the placement use-case.

use melody::experiments::{placement, Scale};
use melody::prelude::*;
use melody_spa::period;

fn some_workloads() -> Vec<WorkloadSpec> {
    [
        "605.mcf",
        "519.lbm",
        "bfs-web",
        "redis.ycsb-A",
        "541.leela",
        "503.bwaves",
    ]
    .iter()
    .map(|n| registry::by_name(n).expect("registry"))
    .collect()
}

/// The Figure 10 counter containment invariants hold on every run, for
/// every device class.
#[test]
fn counter_invariants_on_real_runs() {
    let opts = RunOptions {
        mem_refs: 8_000,
        ..Default::default()
    };
    for spec in [
        presets::local_emr(),
        presets::numa_emr(),
        presets::cxl_b(),
        presets::cxl_a().with_numa_hop(),
        presets::cxl_d().interleaved(2),
    ] {
        for w in some_workloads() {
            let r = run_workload(&Platform::emr2s(), &spec, &w, &opts);
            assert!(
                r.counters.invariants_hold(),
                "{} on {}: {:?}",
                w.name,
                spec.name(),
                r.counters
            );
        }
    }
}

/// Exclusive breakdown components sum to the memory-subsystem stalls on
/// every run (Eq. 6 is an identity, not an approximation).
#[test]
fn breakdown_identity_eq6() {
    let opts = RunOptions {
        mem_refs: 8_000,
        ..Default::default()
    };
    for w in some_workloads() {
        let r = run_workload(&Platform::emr2s(), &presets::cxl_b(), &w, &opts);
        let c = &r.counters;
        assert_eq!(
            c.s_store() + c.s_l1() + c.s_l2() + c.s_l3() + c.s_dram(),
            c.s_memory(),
            "{}",
            w.name
        );
    }
}

/// The pair-level breakdown's `total` equals the measured slowdown, and
/// `other` is the exact residual.
#[test]
fn breakdown_conservation() {
    let opts = RunOptions {
        mem_refs: 8_000,
        ..Default::default()
    };
    for w in some_workloads() {
        let p = run_pair(
            &Platform::emr2s(),
            &presets::local_emr(),
            &presets::cxl_a(),
            &w,
            &opts,
        );
        assert!((p.breakdown.total - p.slowdown).abs() < 1e-9, "{}", w.name);
        let parts = p.breakdown.attributed() + p.breakdown.other;
        assert!((parts - p.breakdown.total).abs() < 1e-9, "{}", w.name);
    }
}

/// Period-based analysis conserves the whole-run slowdown when weighted
/// by baseline cycles, on a real phased workload.
#[test]
fn period_analysis_conservation_on_real_run() {
    let w = registry::by_name("602.gcc").expect("gcc");
    let opts = RunOptions {
        mem_refs: 16_000,
        sample_interval_ns: Some(5_000),
        ..Default::default()
    };
    let local = run_workload(&Platform::emr2s(), &presets::local_emr(), &w, &opts);
    let cxl = run_workload(&Platform::emr2s(), &presets::cxl_b(), &w, &opts);
    let overall = cxl.slowdown_vs(&local);
    let period = (local.counters.instructions / 30).max(1);
    let mut a = period::analyze(&local.samples, &cxl.samples, period);
    // Drop the drain-distorted final period, as the harness does.
    a.periods.pop();
    a.local_cycles.pop();
    let weighted = a.weighted_mean_slowdown();
    assert!(
        (weighted - overall).abs() < 0.15 * (1.0 + overall),
        "weighted {weighted:.3} vs overall {overall:.3}"
    );
}

/// The §5.7 placement use case recovers most of the slowdown.
#[test]
fn placement_use_case() {
    let d = placement::run(Scale::Smoke);
    assert!(d.baseline_slowdown > 0.10);
    assert!(d.tuned_slowdown < d.baseline_slowdown / 2.5);
    assert!(d.bursty_periods > 0);
}

/// Local-vs-local differential analysis reports ~zero slowdown and ~zero
/// components (the null experiment).
#[test]
fn null_experiment_is_clean() {
    let w = registry::by_name("605.mcf").expect("mcf");
    let opts = RunOptions {
        mem_refs: 8_000,
        ..Default::default()
    };
    let p = run_pair(
        &Platform::emr2s(),
        &presets::local_emr(),
        &presets::local_emr(),
        &w,
        &opts,
    );
    assert!(p.slowdown.abs() < 0.02, "null slowdown {}", p.slowdown);
    assert!(p.breakdown.dram.abs() < 0.02);
}
