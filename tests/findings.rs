//! Regression tests for the paper's five Findings: each asserts the
//! *shape* of a paper claim on the simulated testbed.

use melody::experiments::{fig08cd, grid, tails, Scale};
use melody::prelude::*;

/// Finding #1: not all CXL devices are created equal — CXL shows unstable
/// and higher tail latency than local/NUMA; CXL-D is the most stable CXL
/// device; prefetchers do not eliminate the tails.
#[test]
fn finding1_cxl_tail_latencies() {
    // (a/b) Device-level tails, prefetchers off (Figure 3b).
    let cells = tails::fig03b(Scale::Smoke);
    let gap = |config: &str, threads: usize| {
        cells
            .iter()
            .find(|c| c.config == config && c.threads == threads)
            .expect("cell")
            .gap
    };
    assert!(gap("Local", 8) < 110, "local gap {}", gap("Local", 8));
    assert!(
        gap("Local+NUMA", 8) < 130,
        "numa gap {}",
        gap("Local+NUMA", 8)
    );
    assert!(gap("CXL-B", 8) > 2 * gap("Local", 8));
    assert!(gap("CXL-C", 8) > 2 * gap("Local", 8));
    assert!(gap("CXL-D", 8) < gap("CXL-B", 8));

    // (d) Prefetchers lower medians but tails persist (Figure 6).
    let pf = tails::fig06(Scale::Smoke);
    let b = pf
        .iter()
        .find(|c| c.config == "CXL-B" && c.threads == 1)
        .expect("cell");
    assert!(b.p50 < 150, "prefetched median {}", b.p50);
    assert!(
        b.p999 > 100,
        "prefetching should not kill the tail: {}",
        b.p999
    );
}

/// Finding #1(c/e): concurrent reads/writes worsen CXL tails; the
/// FPGA-based device cannot exploit duplex transfer, so its peak
/// bandwidth is read-only while ASIC devices peak under mixed ratios.
#[test]
fn finding1_duplex_and_noise() {
    use melody::experiments::device_curves::{fig05, peak_ratio};
    let panels = fig05(Scale::Smoke);
    let by = |n: &str| panels.iter().find(|p| p.device == n).expect("panel");
    assert_eq!(peak_ratio(by("Local")), "1:0");
    assert_eq!(peak_ratio(by("CXL-C")), "1:0", "FPGA behaves like DDR");
    assert_ne!(peak_ratio(by("CXL-A")), "1:0", "ASIC peaks mixed");
    assert_ne!(peak_ratio(by("CXL-D")), "1:0", "ASIC peaks mixed");

    // R/W noise widens CXL tails, not local (Figure 4).
    let noise = tails::fig04(Scale::Smoke);
    let gap = |config: &str, threads: usize| {
        noise
            .iter()
            .find(|c| c.config == config && c.threads == threads)
            .expect("cell")
            .gap
    };
    assert!(gap("CXL-A", 7) > gap("CXL-A", 0));
    assert!(
        gap("Local", 7) < 250,
        "local stable under noise: {}",
        gap("Local", 7)
    );
}

/// Finding #2: slowdown ordering across devices; many workloads tolerate
/// CXL; bandwidth-bound workloads form a heavy tail on low-bandwidth
/// devices but not on NUMA; interleaving two CXL-D closes the gap.
#[test]
fn finding2_workload_slowdowns() {
    let g = grid::run_emr_grid(Scale::Smoke);
    let under50 = |l: &str| g.slowdown_cdf(l).fraction_at_or_below(50.0);
    assert!(under50("EMR-NUMA") >= under50("EMR-CXL-B"));
    assert!(under50("EMR-CXL-A") >= under50("EMR-CXL-C"));

    // Tail: B's worst case far beyond NUMA's (Figure 8b), in the 1.5-5.8x
    // band the paper reports.
    let b_max = g.slowdown_cdf("EMR-CXL-B").max();
    let numa_max = g.slowdown_cdf("EMR-NUMA").max();
    assert!(b_max > 150.0, "CXL-B max {b_max}%");
    assert!(b_max < 700.0, "CXL-B max {b_max}% beyond the paper band");
    assert!(numa_max < 150.0, "NUMA max {numa_max}%");

    // Interleaving two CXL-D devices (Figure 8f) cuts the worst case.
    let f = fig08cd::fig08f(Scale::Smoke);
    let worst = |label: &str| {
        f.cdfs
            .iter()
            .find(|s| s.name == label)
            .expect("series")
            .points
            .iter()
            .map(|p| p.0)
            .fold(0.0, f64::max)
    };
    assert!(worst("CXL-D x2") < worst("CXL-D x1"));
}

/// Finding #2 (tail-latency impact): CXL+NUMA slows `520.omnetpp` far
/// beyond any plain CXL device, and reducing intensity reduces the
/// slowdown — the paper's direct evidence that tails, not averages,
/// cause it.
#[test]
fn finding2_cxl_plus_numa_anomaly() {
    let d = fig08cd::fig08d(Scale::Smoke);
    let sd = |label: &str| {
        d.slowdowns
            .iter()
            .find(|(l, _)| l == label)
            .expect("slowdown entry")
            .1
    };
    assert!(sd("CXL-A") < 25.0);
    assert!(sd("CXL-A+NUMA") > 3.0 * sd("CXL-A").max(1.0));
    assert!(sd("CXL-A+NUMA 1/4 load") < sd("CXL-A+NUMA"));
}

/// Finding #3: differential stalls track measured slowdowns (Figure 11):
/// Δs within 5pp for ~100% of workloads, memory-subsystem stalls within
/// 5pp for ≥85%.
#[test]
fn finding3_spa_accuracy() {
    let g = grid::run_emr_grid(Scale::Smoke);
    for label in ["EMR-NUMA", "EMR-CXL-A", "EMR-CXL-B"] {
        let r = g.fig11(label);
        let (d, b, m) = r.within_pp(5.0);
        assert!(d >= 0.9, "{label}: Δs within 5pp only {d}");
        assert!(b >= 0.85, "{label}: backend within 5pp only {b}");
        assert!(m >= 0.85, "{label}: memory within 5pp only {m}");
    }
}

/// Finding #4: the prefetcher-inefficiency signature — L2PF L3-misses
/// decrease under CXL while L1PF L3-misses increase, strongly correlated
/// (the paper reports y ≈ x with Pearson 0.99).
#[test]
fn finding4_prefetcher_shift() {
    let g = grid::run_emr_grid(Scale::Smoke);
    let shift = g.fig12a("EMR-CXL-B");
    // Only workloads with real prefetch traffic carry signal.
    let active: Vec<_> = shift
        .points
        .iter()
        .filter(|p| p.l2pf_miss_decrease.abs() > 100.0)
        .collect();
    assert!(!active.is_empty(), "no prefetch-active workloads in subset");
    // Every active workload loses L2-prefetch coverage under CXL, and
    // none shows the opposite shift (L1PF misses falling sharply while
    // L2PF misses fall). The strict y ≈ x relation of Figure 12a is
    // asserted at the single-thread rate regime in the melody-cpu unit
    // test `cxl_reduces_l2pf_coverage_and_shifts_misses_to_l1pf`; at
    // 8-thread streaming rates the prefetch-buffer budgets bind and cap
    // the L1PF's pickup of the dropped lines.
    for p in &active {
        assert!(
            p.l2pf_miss_decrease > 0.0,
            "L2PF coverage should fall under CXL: {p:?}"
        );
        assert!(
            p.l1pf_miss_increase > -0.3 * p.l2pf_miss_decrease,
            "L1PF misses should not collapse alongside L2PF: {p:?}"
        );
    }
    // Coverage (issued / wanted) falls under CXL for the active set.
    let outs = g.setup("EMR-CXL-B").expect("setup");
    let coverage_drops = outs
        .iter()
        .filter(|o| o.local.counters.l2pf_issued > 1_000)
        .filter(|o| {
            melody_spa::prefetch::coverage_decrease_pp(&o.local.counters, &o.target.counters) > 1.0
        })
        .count();
    assert!(
        coverage_drops >= 2,
        "expected L2PF coverage drops, saw {coverage_drops}"
    );
}

/// Finding #4 (validation): with prefetchers disabled, cache-level
/// slowdown components vanish — the stalls move to DRAM.
#[test]
fn finding4_prefetchers_off_no_cache_slowdown() {
    let wl = registry::by_name("603.bwaves").expect("bwaves");
    let base = RunOptions {
        mem_refs: 10_000,
        ..Default::default()
    };
    let off = RunOptions {
        prefetchers: false,
        ..base.clone()
    };
    let on_pair = run_pair(
        &Platform::emr2s(),
        &presets::local_emr(),
        &presets::cxl_a(),
        &wl,
        &base,
    );
    let off_pair = run_pair(
        &Platform::emr2s(),
        &presets::local_emr(),
        &presets::cxl_a(),
        &wl,
        &off,
    );
    let cache_on = on_pair.breakdown.cache();
    let cache_off = off_pair.breakdown.cache();
    assert!(
        cache_on > 0.10,
        "bwaves should show cache slowdown with PF on: {cache_on}"
    );
    assert!(
        cache_off < cache_on / 3.0,
        "PF off should collapse cache slowdown: {cache_off} vs {cache_on}"
    );
    // The slowdown transfers to DRAM rather than disappearing.
    assert!(off_pair.breakdown.dram > on_pair.breakdown.dram);
}

/// Finding #5: workloads with similar overall slowdowns can have very
/// different temporal profiles; period-based analysis exposes them.
#[test]
fn finding5_temporal_variation() {
    use melody::experiments::fig16;
    let panels = fig16::run(Scale::Smoke);
    let gcc = panels
        .iter()
        .find(|p| p.workload == "602.gcc")
        .expect("gcc");
    // gcc has clearly distinguishable heavy and light regions.
    let totals: Vec<f64> = gcc.analysis.periods.iter().map(|b| b.total).collect();
    let max = totals.iter().cloned().fold(f64::MIN, f64::max);
    let min = totals.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max > min + 0.15,
        "gcc temporal variation too flat: {min:.3}..{max:.3}"
    );
}
