//! Insight-layer end-to-end tests: windowed attribution determinism
//! across worker counts, anomaly detection under a seeded fault regime,
//! and the `melody diff` / `melody report` CLI contracts (exit codes,
//! self-contained HTML) — the acceptance criteria of the insight PR.

use std::path::PathBuf;
use std::process::Command;

use melody_insight::doc::RUN_DOC_KIND;
use melody_insight::{DiffVerdict, RunDoc};

fn melody_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_melody"))
}

/// Per-test temp path, unique across concurrently running test threads.
fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("melody_insight_{}_{name}", std::process::id()));
    p
}

/// Runs `melody run 605.mcf cxl-b --refs 8000 --json` with the given
/// extra args, writing the document to `out`.
fn capture_run(out: &PathBuf, extra: &[&str]) {
    let status = melody_bin()
        .args([
            "run", "605.mcf", "cxl-b", "--refs", "8000", "--json", "--out",
        ])
        .arg(out)
        .args(extra)
        .status()
        .expect("spawn melody run");
    assert!(status.success(), "melody run failed: {status}");
}

fn parse_doc(path: &PathBuf) -> RunDoc {
    let text = std::fs::read_to_string(path).expect("read run document");
    serde_json::from_str(&text).expect("parse melody-run document")
}

#[test]
fn run_doc_is_byte_identical_across_jobs_and_diff_exits_zero() {
    // Same seed, different worker counts: the attribution timeline (and
    // the whole document around it) must not move by a byte, and
    // `melody diff` must agree with exit code 0.
    let a = tmp("jobs1.json");
    let b = tmp("jobs4.json");
    capture_run(&a, &["--jobs", "1"]);
    capture_run(&b, &["--jobs", "4"]);
    let bytes_a = std::fs::read(&a).expect("read a");
    let bytes_b = std::fs::read(&b).expect("read b");
    assert_eq!(bytes_a, bytes_b, "--jobs must not perturb the document");

    let out = melody_bin()
        .arg("diff")
        .arg(&a)
        .arg(&b)
        .output()
        .expect("spawn melody diff");
    assert_eq!(out.status.code(), Some(0), "identical documents exit 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("identical"), "diff output: {stdout}");

    // The document itself is a well-formed insight doc with a windowed
    // timeline and the full telemetry export (histogram percentiles and
    // counters — not just a rendered table).
    let doc = parse_doc(&a);
    assert_eq!(doc.kind, RUN_DOC_KIND);
    assert!(
        doc.timeline.len() >= 8,
        "got {} windows",
        doc.timeline.len()
    );
    assert!(!doc.telemetry.counters.is_empty(), "counters exported");
    assert!(
        doc.telemetry
            .hists
            .values()
            .any(|h| h.n > 0 && h.p999 >= h.p50),
        "histogram percentile summaries exported: {:?}",
        doc.telemetry.hists.keys().collect::<Vec<_>>()
    );
}

#[test]
fn anomaly_detector_flags_the_faulted_window_not_the_quiet_ones() {
    let f = tmp("faulted.json");
    capture_run(&f, &["--faults", "retrain"]);
    let doc = parse_doc(&f);
    assert_eq!(doc.meta.faults, "retrain");

    // The retrain regime shows up in the timeline: correlated fault
    // events on specific windows, with the storm labelled.
    assert!(
        doc.timeline.iter().any(|w| w.label == "link-retry-storm"
            && w.fault_events.iter().any(|(k, n)| k == "retrain" && *n > 0)),
        "no labelled retrain window in {:?}",
        doc.timeline
            .iter()
            .map(|w| (&w.label, &w.fault_events))
            .collect::<Vec<_>>()
    );

    // The tail-latency detector fires, and only on windows that did
    // work: a quiet window (no completed demand reads) has no tail to
    // be anomalous about.
    assert!(!doc.anomalies.is_empty(), "retrain run must flag a window");
    for a in &doc.anomalies {
        let w = &doc.timeline[a.window];
        assert!(w.reads > 0, "anomaly on quiet window {}", a.window);
        assert!(
            (a.p999_ns as f64) > a.threshold_ns,
            "flagged window must exceed its threshold: {a:?}"
        );
    }
    // At least one flagged window carries the injected fault as a
    // suspected cause.
    assert!(
        doc.anomalies
            .iter()
            .any(|a| a.causes.iter().any(|(k, _)| k == "retrain")),
        "anomaly causes: {:?}",
        doc.anomalies
    );
}

#[test]
fn diff_reports_fault_regressions_with_nonzero_exit() {
    let clean = tmp("clean.json");
    let faulted = tmp("regressed.json");
    capture_run(&clean, &[]);
    capture_run(&faulted, &["--faults", "retrain"]);

    let out = melody_bin()
        .arg("diff")
        .arg(&clean)
        .arg(&faulted)
        .output()
        .expect("spawn melody diff");
    assert_eq!(out.status.code(), Some(1), "divergent documents exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("DIFFERS"), "diff output: {stdout}");

    // Machine-readable verdict: attribution and tail deltas are named
    // by path, and the fault regime string mismatch is never tolerated.
    let out = melody_bin()
        .args(["diff", "--json"])
        .arg(&clean)
        .arg(&faulted)
        .output()
        .expect("spawn melody diff --json");
    assert_eq!(out.status.code(), Some(1));
    let verdict: DiffVerdict =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("parse diff verdict");
    assert!(!verdict.identical);
    assert!(!verdict.within_tolerance);
    assert!(verdict
        .deltas
        .iter()
        .any(|d| d.path.starts_with("breakdown")));
    assert!(verdict.deltas.iter().any(|d| d.path == "meta.faults"));

    // Usage/I-O problems exit 2, distinct from "documents differ".
    let out = melody_bin()
        .args(["diff", "/nonexistent/a.json", "/nonexistent/b.json"])
        .output()
        .expect("spawn melody diff on missing files");
    assert_eq!(out.status.code(), Some(2), "missing input exits 2");
}

#[test]
fn report_renders_self_contained_html_with_attribution_timeline() {
    let f = tmp("report_run.json");
    let html_path = tmp("report.html");
    capture_run(&f, &["--faults", "retrain"]);
    let status = melody_bin()
        .arg("report")
        .arg(&f)
        .arg("--out")
        .arg(&html_path)
        .status()
        .expect("spawn melody report");
    assert!(status.success());

    let html = std::fs::read_to_string(&html_path).expect("read report");
    assert!(html.starts_with("<!DOCTYPE html>"));
    assert!(html.trim_end().ends_with("</html>"));
    // Three inline SVG charts, among them the stacked attribution
    // timeline; no scripts, stylesheets, or external fetches.
    assert_eq!(html.matches("<svg").count(), 3);
    assert!(html.contains("Per-window stall attribution"));
    assert!(html.contains("link-retry-storm"));
    assert!(!html.contains("<script"));
    assert!(!html.contains("href"));
    assert!(!html.contains("src="));
    assert_eq!(
        html.matches("http").count(),
        html.matches("xmlns=\"http://www.w3.org/2000/svg\"").count(),
        "the only URLs are SVG namespace declarations"
    );

    // A non-run document is rejected up front with the usage exit code.
    let bogus = tmp("bogus.json");
    std::fs::write(&bogus, "{\"kind\": \"not-a-run\"}").expect("write bogus doc");
    let out = melody_bin()
        .arg("report")
        .arg(&bogus)
        .arg("--out")
        .arg(tmp("bogus.html"))
        .output()
        .expect("spawn melody report on bogus doc");
    assert_eq!(out.status.code(), Some(2));
}
