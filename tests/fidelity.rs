//! Fidelity-tier validation: the sampled and fast tiers must track the
//! detailed engine's slowdowns within their documented error bounds, and
//! the sampled tier must keep every determinism contract the detailed
//! tier has (byte-identity across worker counts, exact instruction
//! streams, fault-schedule consistency).
//!
//! Error metric: slowdowns are runtime ratios, so the bound is on the
//! *ratio* error `|s_tier − s_detailed| / (1 + s_detailed)` — the
//! relative error of predicted runtime, which is well-defined for
//! near-zero slowdowns (a plain relative-slowdown error would demand
//! absurd precision from a 1 % slowdown) and tightens absolutely as
//! slowdowns grow. Known limitation (documented in EXPERIMENTS.md):
//! hard-saturating pure-bandwidth kernels (STREAM-class) exceed these
//! bounds; the population below spans latency-bound, compute-bound,
//! bandwidth-bound and cloud classes that stay inside them.

use melody::prelude::*;
use melody_cpu::Fidelity;

/// (workload, detailed slowdown is sanity-checked > this) population:
/// latency-bound (mcf), compute-bound (leela), bandwidth-bound (lbm),
/// graph (bfs), pointer-chasing (omnetpp), cloud (memcached).
const POPULATION: [&str; 6] = [
    "605.mcf",
    "541.leela",
    "519.lbm",
    "bfs-web",
    "520.omnetpp",
    "phoronix.memcached-base",
];

fn opts(fidelity: Fidelity) -> RunOptions {
    RunOptions {
        mem_refs: 60_000,
        fidelity,
        ..Default::default()
    }
}

fn device_pairs() -> [(DeviceSpec, DeviceSpec); 2] {
    [
        (presets::local_emr(), presets::cxl_a()),
        (presets::local_emr(), presets::cxl_b()),
    ]
}

/// Runtime-ratio error between a tier's slowdown and the detailed one.
fn ratio_err(s_tier: f64, s_detailed: f64) -> f64 {
    (s_tier - s_detailed).abs() / (1.0 + s_detailed)
}

#[test]
fn sampled_slowdown_tracks_detailed_within_5_percent() {
    let platform = Platform::emr2s();
    for name in POPULATION {
        let w = registry::by_name(name).expect("workload");
        for (local, target) in device_pairs() {
            let det = run_pair(&platform, &local, &target, &w, &opts(Fidelity::Detailed));
            let smp = run_pair(&platform, &local, &target, &w, &opts(Fidelity::Sampled));
            let err = ratio_err(smp.slowdown, det.slowdown);
            assert!(
                err <= 0.05,
                "{name} on {}: sampled slowdown {:+.4} vs detailed {:+.4} (ratio err {:.3})",
                target.name(),
                smp.slowdown,
                det.slowdown,
                err
            );
        }
    }
}

#[test]
fn fast_slowdown_tracks_detailed_within_15_percent() {
    let platform = Platform::emr2s();
    for name in POPULATION {
        let w = registry::by_name(name).expect("workload");
        for (local, target) in device_pairs() {
            let det = run_pair(&platform, &local, &target, &w, &opts(Fidelity::Detailed));
            let fast = run_pair(&platform, &local, &target, &w, &opts(Fidelity::Fast));
            let err = ratio_err(fast.slowdown, det.slowdown);
            assert!(
                err <= 0.15,
                "{name} on {}: fast slowdown {:+.4} vs detailed {:+.4} (ratio err {:.3})",
                target.name(),
                fast.slowdown,
                det.slowdown,
                err
            );
        }
    }
}

#[test]
fn tiers_classify_memory_sensitivity_identically() {
    // Beyond per-cell bounds: all three tiers must agree on *which*
    // workloads are CXL-sensitive (slowdown above the 30 % screening
    // threshold) — the go/no-go decision the cheap tiers exist to
    // accelerate. Exact rank order may swap between near-ties; the
    // classification may not.
    let platform = Platform::emr2s();
    let (local, target) = (presets::local_emr(), presets::cxl_b());
    let mut classes: Vec<Vec<bool>> = Vec::new();
    for fidelity in [Fidelity::Detailed, Fidelity::Sampled, Fidelity::Fast] {
        classes.push(
            POPULATION
                .iter()
                .map(|name| {
                    let w = registry::by_name(name).expect("workload");
                    let p = run_pair(&platform, &local, &target, &w, &opts(fidelity));
                    p.slowdown > 0.3
                })
                .collect(),
        );
    }
    assert_eq!(classes[0], classes[1], "sampled classification diverges");
    assert_eq!(classes[0], classes[2], "fast classification diverges");
    // Sanity: the population spans both classes.
    assert!(classes[0].iter().any(|&b| b) && classes[0].iter().any(|&b| !b));
}

#[test]
fn sampled_population_is_byte_identical_across_jobs() {
    // The sampled tier inherits the parallel harness's byte-identity
    // contract: same serialized outcomes at any worker count.
    let workloads: Vec<_> = ["605.mcf", "bfs-web", "520.omnetpp"]
        .iter()
        .map(|n| registry::by_name(n).expect("workload"))
        .collect();
    let o = RunOptions {
        mem_refs: 8_000,
        fidelity: Fidelity::Sampled,
        ..Default::default()
    };
    let platform = Platform::emr2s();
    let serial = run_population(
        &platform,
        &presets::local_emr(),
        &presets::cxl_a(),
        &workloads,
        &o,
    );
    for jobs in [1, 4] {
        melody::exec::set_jobs(jobs);
        let par = run_population_par(
            &platform,
            &presets::local_emr(),
            &presets::cxl_a(),
            &workloads,
            &o,
        );
        melody::exec::set_jobs(0);
        assert_eq!(
            serde_json::to_string(&serial).expect("serialize serial"),
            serde_json::to_string(&par).expect("serialize parallel"),
            "sampled population diverged at {jobs} jobs"
        );
    }
}

#[test]
fn sampled_handoff_preserves_instruction_stream() {
    // Fast-forward skips simulation, not the stream: instruction counts
    // are exact (RNG continuity), so local and target sampled runs — and
    // the detailed run — all retire the same instructions.
    let platform = Platform::emr2s();
    let w = registry::by_name("605.mcf").expect("mcf");
    let det = run_pair(
        &platform,
        &presets::local_emr(),
        &presets::cxl_b(),
        &w,
        &opts(Fidelity::Detailed),
    );
    let smp = run_pair(
        &platform,
        &presets::local_emr(),
        &presets::cxl_b(),
        &w,
        &opts(Fidelity::Sampled),
    );
    assert_eq!(
        smp.local.counters.instructions,
        smp.target.counters.instructions
    );
    assert_eq!(
        det.local.counters.instructions, smp.local.counters.instructions,
        "sampled tier must retire the exact detailed instruction count"
    );
    assert!(
        smp.local.counters.invariants_hold(),
        "{:?}",
        smp.local.counters
    );
    assert!(
        smp.target.counters.invariants_hold(),
        "{:?}",
        smp.target.counters
    );
}

#[test]
fn sampled_faulted_run_keeps_fault_cadence() {
    // Time-driven fault windows keep firing inside fast-forwarded
    // regions (via MemoryDevice::fast_forward), so a sampled run sees a
    // retrain count comparable to the detailed run's, not one scaled
    // down by the detail fraction (~16 %).
    let platform = Platform::emr2s();
    let w = registry::by_name("605.mcf").expect("mcf");
    let fc = melody_mem::FaultConfig::by_name("retrain").expect("regime");
    let target = presets::cxl_b().with_faults(fc);
    let det = run_workload(&platform, &target, &w, &opts(Fidelity::Detailed));
    let smp = run_workload(&platform, &target, &w, &opts(Fidelity::Sampled));
    let (d, s) = (det.device_stats.ras.retrains, smp.device_stats.ras.retrains);
    assert!(d > 0, "detailed run must observe retrains");
    assert!(
        s * 3 >= d && s <= d * 3,
        "sampled retrains {s} not comparable to detailed {d}"
    );
    assert!(smp.counters.invariants_hold(), "{:?}", smp.counters);
}

#[test]
fn fast_tier_needs_no_event_loop_budget() {
    // The fast tier's cost is O(phases), not O(mem_refs): a 100× larger
    // run must not cost 100× the work. Proxy: identical slowdown for
    // scaled mem_refs (the model is closed-form in the per-phase refs).
    let platform = Platform::emr2s();
    let w = registry::by_name("605.mcf").expect("mcf");
    let small = RunOptions {
        mem_refs: 10_000,
        fidelity: Fidelity::Fast,
        ..Default::default()
    };
    let big = RunOptions {
        mem_refs: 1_000_000,
        fidelity: Fidelity::Fast,
        ..Default::default()
    };
    let s = run_pair(
        &platform,
        &presets::local_emr(),
        &presets::cxl_b(),
        &w,
        &small,
    );
    let b = run_pair(
        &platform,
        &presets::local_emr(),
        &presets::cxl_b(),
        &w,
        &big,
    );
    assert!(
        (s.slowdown - b.slowdown).abs() < 0.02,
        "fast tier slowdown must be scale-stable: {} vs {}",
        s.slowdown,
        b.slowdown
    );
}
