//! Property-based tests over the device substrate: invariants that must
//! hold for arbitrary request streams and device compositions.

use melody_mem::{presets, DeviceSpec, MemRequest, RequestKind};
use proptest::prelude::*;

fn any_device() -> impl Strategy<Value = DeviceSpec> {
    prop_oneof![
        Just(presets::local_emr()),
        Just(presets::numa_emr()),
        Just(presets::cxl_a()),
        Just(presets::cxl_b()),
        Just(presets::cxl_c()),
        Just(presets::cxl_d()),
        Just(presets::cxl_a().with_numa_hop()),
        Just(presets::cxl_d().interleaved(2)),
        Just(presets::cxl_b().with_fast_tier(presets::local_emr(), 1 << 28)),
    ]
}

fn kind_of(i: u64) -> RequestKind {
    match i % 4 {
        0 => RequestKind::DemandRead,
        1 => RequestKind::PrefetchRead,
        2 => RequestKind::Rfo,
        _ => RequestKind::WriteBack,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Completions never precede issues, for any device and any
    /// monotone request stream.
    #[test]
    fn completion_after_issue(
        spec in any_device(),
        addrs in proptest::collection::vec(0u64..(1 << 30), 1..300),
        gap_ps in 100u64..100_000,
    ) {
        let mut dev = spec.build(99);
        let mut t = 0;
        for (i, &addr) in addrs.iter().enumerate() {
            let req = MemRequest::new(addr * 64, kind_of(i as u64), t);
            let a = dev.access(&req);
            prop_assert!(a.completion > t, "{}: completion {} <= issue {}", spec.name(), a.completion, t);
            t += gap_ps;
        }
    }

    /// Device stats account for every request exactly once.
    #[test]
    fn stats_conservation(
        spec in any_device(),
        n in 1u64..400,
    ) {
        let mut dev = spec.build(7);
        let mut reads = 0;
        let mut writes = 0;
        for i in 0..n {
            let kind = kind_of(i);
            if kind.is_read() { reads += 1 } else { writes += 1 }
            dev.access(&MemRequest::new(i * 64, kind, i * 10_000));
        }
        let s = dev.stats();
        prop_assert_eq!(s.reads, reads);
        prop_assert_eq!(s.writes, writes);
        prop_assert_eq!(s.requests(), n);
    }

    /// Idle latency is load-free latency: spacing requests far apart
    /// keeps every completion within a bounded factor of nominal.
    #[test]
    fn idle_latency_bounded(
        spec in any_device(),
        addrs in proptest::collection::vec(0u64..(1 << 28), 32..128),
    ) {
        let mut dev = spec.build(3);
        let nominal = spec.nominal_latency_ns();
        let mut t = 0u64;
        let mut worst = 0.0f64;
        for &a in &addrs {
            let r = dev.access(&MemRequest::new(a * 64, RequestKind::DemandRead, t));
            let lat_ns = (r.completion - t) as f64 / 1_000.0;
            worst = worst.max(lat_ns / nominal);
            t += 50_000_000; // 50 µs apart: fully idle
        }
        // Even tail events (retries) are bounded well below 100x nominal.
        prop_assert!(worst < 40.0, "{}: worst {worst}x nominal", spec.name());
    }

    /// The latency breakdown's spike component never exceeds the total
    /// latency.
    #[test]
    fn breakdown_components_bounded(
        spec in any_device(),
        addrs in proptest::collection::vec(0u64..(1 << 28), 1..200),
    ) {
        let mut dev = spec.build(5);
        let mut t = 0u64;
        for &a in &addrs {
            let r = dev.access(&MemRequest::new(a * 64, RequestKind::DemandRead, t));
            let total = r.completion - t;
            prop_assert!(r.spike_ps <= total, "{}: spike {} > total {}", spec.name(), r.spike_ps, total);
            t += 1_000_000;
        }
    }
}
