//! Property and differential tests for the topology subsystem: address
//! routing is a partition, interleave bandwidth is bounded by its
//! member count, switch sharing is bounded by the upstream port, and the
//! degenerate one-expander topology is byte-identical to the plain
//! device.

use melody::campaign::{run_campaign, CampaignSpec, Shard};
use melody::exec::CellPolicy;
use melody::journal::Journal;
use melody_mem::interleave::{local_addr, route};
use melody_mem::{presets, probe, DeviceSpec, SwitchConfig, TopologySpec};
use melody_sim::SimRng;

fn parse_topology(json: &str) -> TopologySpec {
    serde_json::from_str(json).expect("valid topology JSON")
}

fn two_way_json(extra: &str) -> String {
    format!(
        r#"{{
            "name": "pair",
            "nodes": [
                {{"id": "h", "kind": "host"}},
                {extra}
                {{"id": "e0", "kind": "expander", "device": "cxl-b"}},
                {{"id": "e1", "kind": "expander", "device": "cxl-b"}}
            ],
            "edges": []
        }}"#
    )
}

/// Every address maps to exactly one expander (the routing function is a
/// partition of the address space), and `(route, local_addr)` is a
/// bijection: the original address is reconstructible from the pair.
#[test]
fn interleaved_routing_is_a_partition() {
    let mut rng = SimRng::seed_from(0x70B0);
    for &granularity in &[64u64, 128, 256, 1024, 4096] {
        for ways in 1..=8usize {
            // Dense sweep around block boundaries plus random probes.
            let boundary_addrs = (0..(4 * ways as u64))
                .map(|b| b * granularity)
                .flat_map(|base| [base, base + 1, base + 63, base + granularity - 1]);
            let random_addrs = (0..2_000).map(|_| rng.next_u64() >> 1);
            for addr in boundary_addrs.chain(random_addrs) {
                let idx = route(addr, granularity, ways);
                assert!(idx < ways, "route out of range: {idx} of {ways}");
                let local = local_addr(addr, granularity, ways);
                // Reconstruct: the interleave bits go back in exactly
                // where route() took them out.
                let block = local / granularity;
                let rebuilt =
                    (block * ways as u64 + idx as u64) * granularity + local % granularity;
                assert_eq!(
                    rebuilt, addr,
                    "bijection broken at addr={addr} g={granularity} ways={ways}"
                );
            }
        }
    }
}

/// A campaign cell simulated under a topology is byte-identical at any
/// worker count: routing (and everything downstream of it) must not
/// depend on `--jobs`.
#[test]
fn topology_cells_are_stable_across_jobs() {
    let spec = CampaignSpec {
        name: "jobs-identity".into(),
        platforms: vec!["emr2s".into()],
        devices: vec![],
        workloads: vec!["605.mcf".into(), "541.leela".into()],
        faults: vec![],
        scale: None,
        mem_refs: Some(4_000),
        seed: None,
        fidelity: None,
        sample_warmup: None,
        sample_window: None,
        sample_period: None,
        topologies: vec![parse_topology(
            r#"{
                "name": "pair",
                "nodes": [
                    {"id": "h", "kind": "host"},
                    {"id": "e0", "kind": "expander", "device": "cxl-b"},
                    {"id": "e1", "kind": "expander", "device": "cxl-b"}
                ],
                "edges": [{"from": "h", "to": "e0"}, {"from": "h", "to": "e1"}]
            }"#,
        )],
        policies: vec![],
        page_bytes: None,
        migrate_budget_gbps: None,
    };
    let run_at = |jobs: usize| {
        melody::exec::set_jobs(jobs);
        let mut j = Journal::in_memory();
        let r = run_campaign(&spec, Shard::full(), &mut j, None, &CellPolicy::default())
            .expect("campaign")
            .report;
        assert!(r.errors.is_empty(), "{:?}", r.errors);
        serde_json::to_string(&r).expect("report serializes")
    };
    let serial = run_at(1);
    let parallel = run_at(4);
    melody::exec::set_jobs(0); // restore default for other tests
    assert_eq!(serial, parallel, "topology results depend on --jobs");
}

/// Differential bandwidth bounds: 2-way interleaving of identical
/// expanders helps (>1×) but can never exceed 2× a single expander, and
/// putting the same pair behind a switch can neither beat the direct
/// interleave nor the switch's upstream port.
#[test]
fn interleave_and_switch_bandwidth_bounds() {
    let bw = |spec: &DeviceSpec| {
        let mut dev = spec.build(7);
        probe::peak_bandwidth_gbps(dev.as_mut(), 1.0, 30_000, 128)
    };
    let single = bw(&presets::cxl_b());
    let pair = bw(&presets::cxl_b().interleaved(2));
    assert!(
        pair <= 2.0 * single * 1.05,
        "2-way interleave {pair} GB/s exceeds 2x single {single} GB/s"
    );
    assert!(
        pair > single,
        "2-way interleave {pair} GB/s should beat one expander {single} GB/s"
    );

    let upstream = 22.0;
    let switched = bw(&DeviceSpec::Switch {
        switch: SwitchConfig {
            upstream_gbps: upstream,
            ..SwitchConfig::default()
        },
        granularity: 256,
        parts: vec![presets::cxl_b(), presets::cxl_b()],
    });
    assert!(
        switched <= upstream * 1.05,
        "switch-shared {switched} GB/s exceeds its {upstream} GB/s upstream port"
    );
    assert!(
        switched < pair,
        "switch sharing ({switched} GB/s) cannot beat direct interleave ({pair} GB/s)"
    );
}

/// Multi-level switch cascades: a switch nested under another switch
/// lowers recursively, and the aggregate bandwidth of the whole tree
/// stays bounded by the *root* upstream port — the narrowest shared
/// link on every path — even when the inner switch's own port is wider.
#[test]
fn switch_cascade_bounded_by_root_upstream() {
    let bw = |spec: &DeviceSpec| {
        let mut dev = spec.build(7);
        probe::peak_bandwidth_gbps(dev.as_mut(), 1.0, 30_000, 128)
    };
    let root_upstream = 18.0;
    let inner = DeviceSpec::Switch {
        switch: SwitchConfig {
            upstream_gbps: 40.0,
            ..SwitchConfig::default()
        },
        granularity: 256,
        parts: vec![presets::cxl_b(), presets::cxl_b()],
    };
    let cascade = DeviceSpec::Switch {
        switch: SwitchConfig {
            upstream_gbps: root_upstream,
            ..SwitchConfig::default()
        },
        granularity: 256,
        parts: vec![inner, presets::cxl_b()],
    };
    let cascaded = bw(&cascade);
    assert!(
        cascaded <= root_upstream * 1.05,
        "cascade {cascaded} GB/s exceeds its {root_upstream} GB/s root upstream port"
    );

    // The second hop adds forwarding latency and a second credit
    // domain: the cascade cannot beat a flat switch over the same
    // three expanders behind the same root port.
    let flat = bw(&DeviceSpec::Switch {
        switch: SwitchConfig {
            upstream_gbps: root_upstream,
            ..SwitchConfig::default()
        },
        granularity: 256,
        parts: vec![presets::cxl_b(), presets::cxl_b(), presets::cxl_b()],
    });
    assert!(
        cascaded <= flat * 1.05,
        "two-level cascade ({cascaded} GB/s) should not beat the flat switch ({flat} GB/s)"
    );

    // The declarative switch-under-switch spelling lowers to exactly
    // the hand-built nested spec.
    let lowered = parse_topology(
        r#"{
            "name": "cascade",
            "nodes": [
                {"id": "h", "kind": "host"},
                {"id": "root", "kind": "switch", "upstream_gbps": 18.0},
                {"id": "leaf-sw", "kind": "switch", "upstream_gbps": 40.0},
                {"id": "e0", "kind": "expander", "device": "cxl-b"},
                {"id": "e1", "kind": "expander", "device": "cxl-b"},
                {"id": "e2", "kind": "expander", "device": "cxl-b"}
            ],
            "edges": [
                {"from": "h", "to": "root"},
                {"from": "root", "to": "leaf-sw"},
                {"from": "root", "to": "e2"},
                {"from": "leaf-sw", "to": "e0"},
                {"from": "leaf-sw", "to": "e1"}
            ]
        }"#,
    )
    .validate()
    .expect("nested switches are a valid topology")
    .lower();
    assert_eq!(lowered, cascade, "declarative cascade lowering diverged");
}

/// The degenerate one-expander topology lowers to exactly the plain
/// preset spec: same canonical JSON, same built device behaviour.
#[test]
fn degenerate_topology_matches_plain_device() {
    let lowered = parse_topology(
        r#"{
            "name": "cxl-b",
            "nodes": [
                {"id": "h", "kind": "host"},
                {"id": "e0", "kind": "expander", "device": "cxl-b", "capacity_gib": 128}
            ],
            "edges": [{"from": "h", "to": "e0"}]
        }"#,
    )
    .validate()
    .expect("valid")
    .lower();
    let plain = presets::cxl_b();
    assert_eq!(lowered, plain);
    assert_eq!(lowered.canonical_json(), plain.canonical_json());

    // Same seed, same traffic, same completions.
    let mut a = lowered.build(42);
    let mut b = plain.build(42);
    let mut rng = SimRng::seed_from(9);
    for i in 0..5_000u64 {
        let addr = (rng.next_u64() >> 1) & !63;
        let req = melody_mem::MemRequest::new(addr, melody_mem::RequestKind::DemandRead, i * 700);
        assert_eq!(a.access(&req), b.access(&req), "diverged at request {i}");
    }
}

/// Spec validation rejects unknown vocabulary with exit-2-quality
/// errors that list the valid names.
#[test]
fn validation_errors_list_valid_names() {
    // Unknown device class -> error lists the classes.
    let bad_class = parse_topology(
        r#"{
            "name": "t",
            "nodes": [
                {"id": "h", "kind": "host"},
                {"id": "e0", "kind": "expander", "device": "cxl-z"}
            ],
            "edges": [{"from": "h", "to": "e0"}]
        }"#,
    );
    let err = bad_class.validate().unwrap_err();
    assert!(err.contains("cxl-z"), "{err}");
    for class in presets::DEVICE_CLASSES {
        assert!(err.contains(class), "error must list `{class}`: {err}");
    }

    // Edge to an unknown node -> error lists the known node ids.
    let mut bad_edge = two_way_json("");
    bad_edge = bad_edge.replace(
        "\"edges\": []",
        r#""edges": [{"from": "h", "to": "e0"}, {"from": "h", "to": "ghost"}]"#,
    );
    let err = parse_topology(&bad_edge).validate().unwrap_err();
    assert!(err.contains("ghost"), "{err}");
    assert!(err.contains("e0") && err.contains("e1"), "{err}");

    // Unknown fault regime -> error lists the regimes.
    let bad_fault = parse_topology(
        r#"{
            "name": "t",
            "nodes": [
                {"id": "h", "kind": "host"},
                {"id": "e0", "kind": "expander", "device": "cxl-b", "faults": "gremlins"}
            ],
            "edges": [{"from": "h", "to": "e0"}]
        }"#,
    );
    let err = bad_fault.validate().unwrap_err();
    assert!(err.contains("gremlins"), "{err}");
    for regime in melody_mem::faults::REGIMES {
        assert!(err.contains(regime), "error must list `{regime}`: {err}");
    }
}
