//! Differential test suite for the online tiering policy engine.
//!
//! The contract under test, policy by policy:
//!
//! - `static` is *exactly* today's behavior: the CLI with `--policy
//!   static` emits byte-identical output to the same invocation with no
//!   flag at all (text and `--json`), because the inert spelling lowers
//!   to the absence of a tiering wrapper;
//! - `lru-hotness` on the phased hot/cold workload beats the static
//!   CXL-heavy placement by a gated margin and never beats all-local —
//!   migration helps, but it cannot manufacture bandwidth;
//! - every policy is deterministic across worker counts: a campaign
//!   with a `policies` axis serializes byte-identically at `--jobs 1`
//!   and `--jobs 4`;
//! - an unknown policy name is an exit-2 error listing the valid
//!   spellings, through the CLI and through the campaign server (same
//!   convention as topology validation errors).

use std::process::Command;

use melody::campaign::{run_campaign, CampaignSpec, Shard};
use melody::exec::CellPolicy;
use melody::experiments::tiering::{phased_workload, tiering_config};
use melody::journal::Journal;
use melody::prelude::*;
use melody_mem::{PolicyKind, POLICIES};

fn melody_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_melody"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("melody-policy-{name}-{}", std::process::id()));
    p
}

/// `--policy static` is byte-identical to no flag on `melody run`, both
/// the text report and the `--json` insight document; an adaptive
/// policy on the same invocation produces *different* bytes (the flag
/// is not silently ignored).
#[test]
fn static_policy_cli_output_is_byte_identical_to_no_flag() {
    let run = |extra: &[&str], json: bool| -> (Vec<u8>, i32) {
        let mut args = vec!["run", "605.mcf", "cxl-b", "--refs", "4000"];
        if json {
            args.push("--json");
        }
        args.extend_from_slice(extra);
        let out = melody_bin().args(&args).output().expect("run melody");
        (out.stdout, out.status.code().unwrap_or(-1))
    };
    for json in [false, true] {
        let (plain, code) = run(&[], json);
        assert_eq!(code, 0);
        let (statik, code) = run(&["--policy", "static"], json);
        assert_eq!(code, 0);
        assert_eq!(
            plain, statik,
            "--policy static must be byte-identical to no flag (json={json})"
        );
    }
    let (plain, _) = run(&[], false);
    let (adaptive, code) = run(&["--policy", "lru-hotness"], false);
    assert_eq!(code, 0);
    assert_ne!(
        plain, adaptive,
        "an adaptive policy must actually change the run"
    );
}

/// The adaptive-policy benefit gate, from the integration surface: on
/// the phased hot/cold workload over CXL-B, `lru-hotness` recovers a
/// real fraction of the static placement's slowdown, moves real pages,
/// and still cannot beat the all-local baseline.
#[test]
fn lru_hotness_beats_static_and_never_beats_all_local() {
    let platform = Platform::skx2s();
    let local = melody::campaign::local_for_platform(&platform);
    let cxl = presets::cxl_b();
    let w = phased_workload();
    let opts = RunOptions {
        mem_refs: 64_000,
        ..Default::default()
    };
    let run_policy = |kind: PolicyKind| {
        let target = cxl
            .clone()
            .with_tiering(tiering_config(kind), local.clone());
        let (pair, _events, _dropped, metrics) =
            melody::exec::traced(|| run_pair(&platform, &local, &target, &w, &opts));
        let migrations = metrics
            .counters
            .get("tier.migrations_total")
            .copied()
            .unwrap_or(0);
        (pair.slowdown, migrations)
    };
    let (static_slowdown, static_migrations) = run_policy(PolicyKind::Static);
    assert_eq!(static_migrations, 0, "static never migrates");
    assert!(
        static_slowdown > 0.10,
        "the phased workload must hurt on CXL-B: {static_slowdown}"
    );
    let (lru_slowdown, lru_migrations) = run_policy(PolicyKind::LruHotness);
    assert!(lru_migrations > 0, "lru-hotness must move pages");
    assert!(
        lru_slowdown < static_slowdown * 0.75,
        "lru-hotness must recover >25% of the static slowdown: {lru_slowdown} vs {static_slowdown}"
    );
    assert!(
        lru_slowdown > -0.005,
        "migration cannot beat the all-local baseline: {lru_slowdown}"
    );
}

/// Every policy's campaign cells are byte-identical at any worker
/// count: the tracker, the migration schedule, and the paced copy
/// traffic are all deterministic functions of the cell inputs.
#[test]
fn policy_cells_are_stable_across_jobs() {
    let spec = CampaignSpec {
        name: "policy-jobs-identity".into(),
        platforms: vec!["skx2s".into()],
        devices: vec!["cxl-b".into()],
        workloads: vec!["605.mcf".into()],
        faults: vec![],
        scale: None,
        mem_refs: Some(4_000),
        seed: None,
        fidelity: None,
        sample_warmup: None,
        sample_window: None,
        sample_period: None,
        topologies: vec![],
        policies: POLICIES.iter().map(|p| p.to_string()).collect(),
        page_bytes: None,
        migrate_budget_gbps: None,
    };
    let run_at = |jobs: usize| {
        melody::exec::set_jobs(jobs);
        let mut j = Journal::in_memory();
        let r = run_campaign(&spec, Shard::full(), &mut j, None, &CellPolicy::default())
            .expect("campaign")
            .report;
        assert!(r.errors.is_empty(), "{:?}", r.errors);
        assert_eq!(r.rows.len(), POLICIES.len(), "one cell per policy");
        serde_json::to_string(&r).expect("report serializes")
    };
    let serial = run_at(1);
    let parallel = run_at(4);
    melody::exec::set_jobs(0); // restore default for other tests
    assert_eq!(serial, parallel, "policy results depend on --jobs");
}

/// Unknown policy names are exit-2 errors that list the valid
/// spellings — on the direct CLI, on `submit` against a live server,
/// and `status` for the never-created job stays a clean typed error.
#[test]
fn unknown_policy_is_exit_2_with_the_valid_list() {
    // Direct CLI: `run --policy mru`.
    let out = melody_bin()
        .args([
            "run", "605.mcf", "cxl-b", "--refs", "1000", "--policy", "mru",
        ])
        .output()
        .expect("run melody");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    for p in POLICIES {
        assert!(stderr.contains(p), "error must list `{p}`: {stderr}");
    }

    // Server path: a spec with an unknown policy is a 400 bad-spec whose
    // message carries the same list, `submit` exits 2 with it, and
    // `status --json` on the never-created job id is a clean exit 2.
    let state = tmp("unknown-policy-state");
    let handle = Server::start(ServeConfig {
        port: 0,
        state_dir: state.clone(),
        ..Default::default()
    })
    .expect("server starts");
    let addr = handle.addr();
    let spec_path = tmp("unknown-policy-spec.json");
    std::fs::write(
        &spec_path,
        "{\"name\":\"bad-policy\",\"platforms\":[\"emr2s\"],\"devices\":[\"cxl-a\"],\
         \"workloads\":[\"605.mcf\"],\"mem_refs\":2000,\"policies\":[\"mru\"]}",
    )
    .expect("write spec");
    let out = melody_bin()
        .args([
            "submit",
            spec_path.to_str().expect("utf8"),
            "--server",
            &addr,
        ])
        .output()
        .expect("run melody submit");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("mru"), "{stderr}");
    for p in POLICIES {
        assert!(stderr.contains(p), "submit error must list `{p}`: {stderr}");
    }
    let out = melody_bin()
        .args(["status", "job-000001", "--json", "--server", &addr])
        .output()
        .expect("run melody status");
    assert_eq!(
        out.status.code(),
        Some(2),
        "status of the rejected submission's job id exits 2"
    );
    handle.drain();
    handle.join();
    let _ = std::fs::remove_dir_all(&state);
    let _ = std::fs::remove_file(&spec_path);
}
