//! Property-based invariant tests.
//!
//! Each test generates randomized inputs from the simulator's own
//! deterministic [`SimRng`] (no external property-testing dependency)
//! and checks a mechanical invariant the simulation must uphold for
//! *every* input, not just the golden configurations:
//!
//! - the DRAM row-buffer never services a column access on a closed row;
//! - CXL link flow-control credits never go negative and all return at
//!   quiesce;
//! - [`EventQueue`] pops are non-decreasing in time, FIFO within ties;
//! - Spa stall components are non-negative and sum to at most the total
//!   stall count;
//! - the tiering page table keeps every page in exactly one tier,
//!   conserves residency (`promoted − demoted == fast-resident`), keeps
//!   migrated bytes equal to migrations × page size, and never exceeds
//!   the per-epoch migration budget.
//!
//! Iteration counts default low enough for the tier-1 suite; the
//! scheduled CI job raises them via `MELODY_PROP_ITERS`.

use melody::prelude::*;
use melody_mem::{
    CxlDevice, DramBackend, DramTiming, MemRequest, PolicyKind, RequestKind, TieredDevice,
    TieringConfig,
};
use melody_sim::{CreditPool, EventQueue, SimRng};

/// Per-test iteration count: `MELODY_PROP_ITERS` when set, else the
/// test's own default (tuned so the whole suite stays in tier-1 budget).
fn iters(default: u64) -> u64 {
    std::env::var("MELODY_PROP_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[test]
fn dram_row_buffer_never_hits_a_closed_row() {
    for case in 0..iters(40) {
        let mut rng = SimRng::seed_from(0xD7A8 ^ case);
        let timing = if rng.chance(0.5) {
            DramTiming::ddr4()
        } else {
            DramTiming::ddr5()
        };
        let channels = 1 + rng.below(8) as usize;
        let mut dram = DramBackend::new(timing, channels);
        let mut t = 0u64;
        for _ in 0..400 {
            // Mix of tight reuse (row hits) and far jumps (conflicts).
            let addr = if rng.chance(0.6) {
                rng.below(1 << 14) * 64
            } else {
                rng.below(1 << 30)
            };
            let is_read = rng.chance(0.7);
            // The oracle mirrors the controller's decode *before* the
            // access mutates bank state.
            let (ch, bank, row) = dram.locate(addr);
            let open_before = dram.open_row(ch, bank);
            let a = dram.access(addr, is_read, t);
            assert_eq!(
                a.row_hit,
                open_before == Some(row),
                "case {case}: row_hit must equal the open-row oracle \
                 (addr {addr:#x}, open {open_before:?}, row {row})"
            );
            if open_before != Some(row) {
                assert!(
                    !a.row_hit,
                    "case {case}: column access serviced on a closed row"
                );
            }
            assert_eq!(
                dram.open_row(ch, bank),
                Some(row),
                "case {case}: the accessed row must be left open"
            );
            assert!(a.completion >= t, "case {case}: completion before arrival");
            t += rng.below(3_000);
        }
    }
}

#[test]
fn credit_pool_conserves_credits_under_random_schedules() {
    for case in 0..iters(60) {
        let mut rng = SimRng::seed_from(0xC2ED17 ^ case);
        let total = 1 + rng.below(64) as u32;
        let mut pool = CreditPool::new(total);
        let mut now = 0u64;
        let mut held = 0u32;
        for _ in 0..500 {
            now += rng.below(1_000);
            // Acquiring with every credit held and no return scheduled is
            // a documented caller error (the pool panics), so the random
            // schedule releases first once fully held.
            if held > 0 && (held == total || rng.chance(0.5)) {
                pool.release_at(now + rng.below(5_000));
                held -= 1;
            } else {
                let granted = pool.acquire(now);
                assert!(granted >= now, "case {case}: grant in the past");
                held += 1;
            }
            assert!(
                pool.invariants_hold(),
                "case {case}: free+held+in-flight must equal {total}"
            );
            assert!(pool.available() <= pool.total());
        }
        // Return everything still held, then quiesce: every credit of
        // the initial count comes home, never more, never fewer.
        for _ in 0..held {
            now += rng.below(1_000);
            pool.release_at(now);
        }
        assert_eq!(pool.quiesce(), total, "case {case}");
        assert!(pool.invariants_hold(), "case {case}");
    }
}

#[test]
fn cxl_device_credits_quiesce_under_random_traffic() {
    let cxl_cfg = |spec: DeviceSpec| match spec {
        DeviceSpec::Cxl(cfg) => cfg,
        _ => unreachable!("CXL presets are CxlConfig"),
    };
    let kinds = [
        RequestKind::DemandRead,
        RequestKind::PrefetchRead,
        RequestKind::Rfo,
        RequestKind::WriteBack,
    ];
    for case in 0..iters(12) {
        let mut rng = SimRng::seed_from(0xC81 ^ case);
        let cfg = match rng.below(4) {
            0 => cxl_cfg(presets::cxl_a()),
            1 => cxl_cfg(presets::cxl_b()),
            2 => cxl_cfg(presets::cxl_c()),
            _ => cxl_cfg(presets::cxl_d()),
        };
        let mut dev = CxlDevice::new(cfg, 0x9E11 ^ case);
        let mut t = 0u64;
        for i in 0..2_000u64 {
            let kind = kinds[rng.below(4) as usize];
            dev.access(&MemRequest::new(rng.below(1 << 28) * 64, kind, t));
            // Burstiness: sometimes back-to-back, sometimes idle gaps.
            t += if rng.chance(0.7) {
                rng.below(400)
            } else {
                rng.below(60_000)
            };
            if i % 64 == 0 {
                assert!(
                    dev.credit_pool().invariants_hold(),
                    "case {case}: credit conservation broken at request {i}"
                );
            }
        }
        assert!(dev.credit_pool().invariants_hold(), "case {case}");
        let (avail, total) = dev.quiesce_credits();
        assert_eq!(avail, total, "case {case}: credits must all return");
    }
}

#[test]
fn event_queue_pops_nondecreasing_and_fifo_within_ties() {
    for case in 0..iters(80) {
        let mut rng = SimRng::seed_from(0xE0E47 ^ case);
        let mut q = EventQueue::new();
        let n = 1 + rng.below(300);
        for id in 0..n {
            // A small time range forces plenty of exact ties.
            q.push(rng.below(40), id);
        }
        let mut last: Option<(u64, u64)> = None;
        let mut popped = 0;
        while let Some((t, id)) = q.pop() {
            if let Some((lt, lid)) = last {
                assert!(t >= lt, "case {case}: pops must be non-decreasing");
                if t == lt {
                    assert!(id > lid, "case {case}: ties must pop in insertion order");
                }
            }
            last = Some((t, id));
            popped += 1;
        }
        assert_eq!(popped, n, "case {case}: every event pops exactly once");
    }
}

#[test]
fn tiering_page_table_invariants_hold_under_random_streams() {
    for case in 0..iters(8) {
        let mut rng = SimRng::seed_from(0x71E2 ^ case);
        let policy = match rng.below(4) {
            0 => PolicyKind::LruHotness,
            1 => PolicyKind::Clock,
            2 => PolicyKind::BandwidthAware,
            _ => PolicyKind::SpaGuided, // empty guide: always migrates
        };
        let mut cfg = TieringConfig::new(policy);
        cfg.page_bytes = if rng.chance(0.5) { 4_096 } else { 8_192 };
        // A small fast tier so capacity pressure (and demotion) is real.
        cfg.fast_bytes = (4 + rng.below(28)) * cfg.page_bytes;
        cfg.epoch_ns = 5_000 + rng.below(30_000);
        cfg.hot_touches = 1 + rng.below(3);
        cfg.migrate_budget_gbps = 2.0 + rng.below(30) as f64;
        cfg.validate().expect("generated config is valid");
        let slow = presets::cxl_b();
        let mut dev = TieredDevice::new(
            cfg.clone(),
            presets::local_emr().build(1),
            slow.build(2),
            slow.analytic_profile().total_gbps,
        );
        let fast_capacity = cfg.fast_bytes / cfg.page_bytes;
        let budget = cfg.budget_bytes_per_epoch();
        let pages = 8 + rng.below(96);
        let lines_per_page = cfg.page_bytes / 64;
        let mut touched = std::collections::BTreeSet::new();
        let mut t = 0u64;
        let ctx = |case: u64| format!("case {case} ({policy:?})");
        for i in 0..4_000u64 {
            // Skewed page choice: a hot quarter takes most of the
            // traffic, so promotion, reuse, and eviction all happen.
            let page = if rng.chance(0.8) {
                rng.below(pages / 4 + 1)
            } else {
                rng.below(pages)
            };
            let addr = page * cfg.page_bytes + rng.below(lines_per_page) * 64;
            touched.insert(page);
            let is_store = rng.chance(0.3);
            dev.observe_slot(addr, is_store, t);
            let kind = if is_store {
                RequestKind::Rfo
            } else {
                RequestKind::DemandRead
            };
            let a = dev.access(&MemRequest::new(addr, kind, t));
            assert!(a.completion >= t, "{}: completion in the past", ctx(case));
            // Burstiness: back-to-back runs and long idle gaps, so some
            // epochs are packed and others see one straggler.
            t += if rng.chance(0.7) {
                rng.below(2_000)
            } else {
                rng.below(120_000)
            };
            if i % 256 == 0 {
                let c = dev.counters();
                assert!(
                    dev.fast_resident_pages() <= fast_capacity,
                    "{}: fast tier over capacity",
                    ctx(case)
                );
                assert_eq!(
                    c.migrated_bytes,
                    c.migrations * cfg.page_bytes,
                    "{}: byte math",
                    ctx(case)
                );
            }
        }
        let c = dev.counters();
        // Every page is in exactly one tier: residency is the fast-page
        // set, its complement within the known pages is the slow tier,
        // and nothing resides outside the observed page population.
        assert_eq!(
            dev.known_pages(),
            touched.len() as u64,
            "{}: page population tracks the stream",
            ctx(case)
        );
        let fast_of_touched = touched.iter().filter(|p| dev.is_fast_resident(**p)).count() as u64;
        assert_eq!(
            fast_of_touched,
            dev.fast_resident_pages(),
            "{}: every fast-resident page is a known page",
            ctx(case)
        );
        // Residency conservation: pages enter the fast tier only by
        // promotion and leave only by demotion.
        assert_eq!(
            c.promoted - c.demoted,
            dev.fast_resident_pages(),
            "{}: promoted − demoted must equal the resident count",
            ctx(case)
        );
        assert_eq!(
            c.migrations,
            c.promoted + c.demoted,
            "{}: every migration is a promotion or a demotion",
            ctx(case)
        );
        assert_eq!(
            c.migrated_bytes,
            c.migrations * cfg.page_bytes,
            "{}: migrated bytes are whole pages",
            ctx(case)
        );
        assert!(
            c.max_epoch_bytes <= budget,
            "{}: epoch moved {} bytes over the {} budget",
            ctx(case),
            c.max_epoch_bytes,
            budget
        );
        assert!(
            dev.fast_resident_pages() <= fast_capacity,
            "{}: fast tier over capacity",
            ctx(case)
        );
    }
}

#[test]
fn spa_stall_components_are_contained_and_bounded() {
    let devices = [
        presets::local_emr(),
        presets::numa_emr(),
        presets::cxl_a(),
        presets::cxl_b(),
        presets::cxl_c(),
        presets::cxl_d(),
    ];
    let workloads = registry::all();
    for case in 0..iters(10) {
        let mut rng = SimRng::seed_from(0x59A ^ case);
        let w = &workloads[rng.below(workloads.len() as u64) as usize];
        let spec = &devices[rng.below(devices.len() as u64) as usize];
        let opts = RunOptions {
            mem_refs: 2_000 + rng.below(4_000),
            seed: rng.next_u64(),
            prefetchers: rng.chance(0.8),
            ..Default::default()
        };
        let r = run_workload(&Platform::emr2s(), spec, w, &opts);
        let c = &r.counters;
        let ctx = format!("case {case}: {} on {}", w.name, spec.name());
        // Containment chain of the paper's Figure 10 counters: a deeper
        // miss level can never out-stall the level that contains it.
        assert!(c.bound_on_loads >= c.stalls_l1d_miss, "{ctx}");
        assert!(c.stalls_l1d_miss >= c.stalls_l2_miss, "{ctx}");
        assert!(c.stalls_l2_miss >= c.stalls_l3_miss, "{ctx}");
        // Exclusive components (Eq. 6 inputs) are differences of the
        // chain, so each is non-negative and they sum back exactly.
        let sum = c.s_l1() + c.s_l2() + c.s_l3() + c.s_dram();
        assert_eq!(sum, c.bound_on_loads, "{ctx}");
        assert!(
            c.s_memory() <= c.retired_stalls,
            "{ctx}: memory stalls {} exceed total retired stalls {}",
            c.s_memory(),
            c.retired_stalls
        );
        assert!(c.invariants_hold(), "{ctx}");
        assert!(c.retired_stalls <= c.cycles, "{ctx}");
    }
}
