//! Property-based tests over the whole pipeline: for *arbitrary*
//! workload specifications, the differential-analysis preconditions and
//! counter invariants must hold on every device.

use melody::prelude::*;
use melody_workloads::{Pattern, Phase, Suite};
use proptest::prelude::*;

fn any_phase() -> impl Strategy<Value = Phase> {
    (
        1.0f64..200.0, // uops_per_mem
        0.0f64..0.9,   // dependence
        20u64..4_000,  // working set in MiB
        0.0f64..0.95,  // seq_frac
        0.0f64..0.5,   // store_frac
        prop_oneof![
            Just(Pattern::Sequential),
            Just(Pattern::Random),
            (1u32..16).prop_map(Pattern::Strided),
            (0.2f64..0.9, 16u64..256).prop_map(|(hot_frac, mb)| Pattern::Skewed {
                hot_frac,
                hot_bytes: mb << 20,
            }),
        ],
    )
        .prop_map(|(uops, dep, ws_mb, seq, store, pattern)| Phase {
            weight: 1.0,
            uops_per_mem: uops,
            dependence: dep,
            working_set: ws_mb << 20,
            seq_frac: seq,
            pattern,
            store_frac: store,
        })
}

fn any_spec() -> impl Strategy<Value = WorkloadSpec> {
    (any_phase(), 1u32..9, 1.0f64..3.5, 0.0f64..0.4).prop_map(|(p, threads, ilp, fe)| {
        let mut w = WorkloadSpec::single("prop.workload", Suite::Phoronix, p);
        w.threads = threads;
        w.ilp = ilp;
        w.frontend_bound = fe;
        w
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Local and CXL runs of any workload execute the identical
    /// instruction stream, and both satisfy the Figure 10 counter
    /// invariants.
    #[test]
    fn differential_preconditions(w in any_spec()) {
        let opts = RunOptions { mem_refs: 2_000, ..Default::default() };
        let local = run_workload(&Platform::emr2s(), &presets::local_emr(), &w, &opts);
        let cxl = run_workload(&Platform::emr2s(), &presets::cxl_b(), &w, &opts);
        prop_assert_eq!(local.counters.instructions, cxl.counters.instructions);
        prop_assert!(local.counters.invariants_hold(), "{:?}", local.counters);
        prop_assert!(cxl.counters.invariants_hold(), "{:?}", cxl.counters);
        // Higher-latency lower-bandwidth memory can't make things faster
        // (beyond rounding noise).
        prop_assert!(
            cxl.counters.cycles as f64 >= local.counters.cycles as f64 * 0.99,
            "CXL run faster than local: {} vs {}",
            cxl.counters.cycles,
            local.counters.cycles
        );
    }

    /// The Spa breakdown's components exactly account for the measured
    /// slowdown on arbitrary workloads.
    #[test]
    fn breakdown_accounts_for_slowdown(w in any_spec()) {
        let opts = RunOptions { mem_refs: 2_000, ..Default::default() };
        let p = run_pair(
            &Platform::emr2s(),
            &presets::local_emr(),
            &presets::cxl_a(),
            &w,
            &opts,
        );
        prop_assert!((p.breakdown.total - p.slowdown).abs() < 1e-9);
        let sum = p.breakdown.attributed() + p.breakdown.other;
        prop_assert!((sum - p.breakdown.total).abs() < 1e-9);
    }

    /// Eq. 5's tightest estimator stays within 10pp of the measured
    /// slowdown for arbitrary (not just calibrated) workloads.
    #[test]
    fn estimators_track_arbitrary_workloads(w in any_spec()) {
        let opts = RunOptions { mem_refs: 2_000, ..Default::default() };
        let p = run_pair(
            &Platform::emr2s(),
            &presets::local_emr(),
            &presets::cxl_b(),
            &w,
            &opts,
        );
        let e = estimates(&p.local.counters, &p.target.counters);
        let (d, _, _) = e.abs_errors_pp();
        prop_assert!(d < 10.0, "Δs error {d}pp for {:?}", w.phases[0]);
    }
}
