//! End-to-end resilience: panic isolation across a sweep, and
//! checkpoint/resume reproducing an uninterrupted run byte-for-byte.

use melody::exec::CellPolicy;
use melody::experiments::degraded;
use melody::experiments::Scale;
use melody::journal::Journal;

fn scratch_path(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("melody-resilience-tests");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(format!("{tag}-{}.jsonl", std::process::id()))
}

fn small_sweep() -> Vec<(String, String)> {
    vec![
        ("cxl-a".into(), "none".into()),
        ("cxl-b".into(), "crc-storm".into()),
        ("cxl-c".into(), "retrain".into()),
        ("cxl-d".into(), "poison".into()),
    ]
}

#[test]
fn interrupted_sweep_resumes_byte_identical() {
    let cells = small_sweep();

    // Reference: one uninterrupted run.
    let uninterrupted = degraded::run_with(
        Scale::Smoke,
        &cells,
        &mut Journal::in_memory(),
        None,
        &CellPolicy::default(),
    );
    let reference = serde_json::to_string(&uninterrupted).expect("serialize reference");

    // Interrupted run: finish only 2 cells, then drop the journal —
    // simulating a killed process whose checkpoint file survives.
    let path = scratch_path("resume");
    let _ = std::fs::remove_file(&path);
    {
        let mut journal = Journal::open(&path).expect("open journal");
        let partial = degraded::run_with(
            Scale::Smoke,
            &cells,
            &mut journal,
            Some(2),
            &CellPolicy::default(),
        );
        assert_eq!(partial.cells.len(), 2, "limit caps attempted cells");
        assert_eq!(journal.len(), 2);
    }

    // Resume: reopen the journal; finished cells are restored, the rest
    // computed, and the final artifact matches byte-for-byte.
    let mut journal = Journal::open(&path).expect("reopen journal");
    assert_eq!(journal.len(), 2, "checkpoints survive the restart");
    let resumed = degraded::run_with(
        Scale::Smoke,
        &cells,
        &mut journal,
        None,
        &CellPolicy::default(),
    );
    assert_eq!(journal.len(), cells.len());
    assert_eq!(
        reference,
        serde_json::to_string(&resumed).expect("serialize resumed"),
        "resumed sweep must match the uninterrupted run byte-for-byte"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn panicking_cell_leaves_the_rest_of_the_sweep_intact() {
    // One deliberately broken cell (unknown regime → panic inside the
    // cell closure) must surface as a structured CellError while every
    // other cell completes.
    let mut cells = small_sweep();
    cells.insert(2, ("cxl-b".into(), "definitely-broken".into()));
    let report = degraded::run_with(
        Scale::Smoke,
        &cells,
        &mut Journal::in_memory(),
        None,
        &CellPolicy::default(),
    );
    assert_eq!(report.cells.len(), 4, "all healthy cells complete");
    assert_eq!(report.errors.len(), 1);
    let e = &report.errors[0];
    assert_eq!(e.index, 2);
    assert_eq!(e.kind, melody::exec::CellErrorKind::Panicked);
    assert!(
        e.message.contains("definitely-broken"),
        "panic payload is preserved: {}",
        e.message
    );
    assert!(e.attempts >= 1);
    // And the failure is visible in the rendered report.
    assert!(report.render().contains("failed cells"));
}

#[test]
fn retry_policy_is_applied_per_cell() {
    // With max_attempts 3 a permanently-broken cell is attempted exactly
    // 3 times and still reports a structured error.
    let cells = vec![
        ("cxl-a".into(), "none".into()),
        ("cxl-a".into(), "still-broken".into()),
    ];
    let report = degraded::run_with(
        Scale::Smoke,
        &cells,
        &mut Journal::in_memory(),
        None,
        &CellPolicy::default().with_attempts(3),
    );
    assert_eq!(report.cells.len(), 1);
    assert_eq!(report.errors.len(), 1);
    assert_eq!(report.errors[0].attempts, 3);
}
