//! Integration tests for the live observability layer: `/metrics`
//! Prometheus exposition scraped from a real server (linted with the
//! in-repo parser), cell counters that reconcile with the finished
//! campaign's accounting, monotonically nondecreasing job progress,
//! and per-job result-cache attribution in `JobView`.

use std::path::PathBuf;
use std::time::Duration;

use melody::server::api::JobStatus;
use melody::server::client;
use melody::server::{ServeConfig, Server, ServerHandle};
use melody_telemetry::prom;

fn tmp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("melody-obs-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// A small 4-cell campaign (1 platform × 2 devices × 2 workloads).
fn tiny_spec_json(name: &str) -> String {
    format!(
        "{{\"name\":\"{name}\",\"platforms\":[\"emr2s\"],\"devices\":[\"numa\",\"cxl-a\"],\
         \"workloads\":[\"605.mcf\",\"541.leela\"],\"mem_refs\":4000}}"
    )
}

fn start(cfg: ServeConfig) -> (ServerHandle, String) {
    let handle = Server::start(cfg).expect("server starts");
    let addr = handle.addr();
    (handle, addr)
}

fn wait_done(addr: &str, job: &str) -> melody::server::api::JobView {
    client::wait(
        addr,
        job,
        Duration::from_millis(25),
        Duration::from_secs(120),
    )
    .expect("job finishes")
}

/// Extracts the value of an unlabelled series from an exposition
/// document, e.g. `series_value(text, "melody_cells_done_total")`.
fn series_value(text: &str, name: &str) -> Option<f64> {
    text.lines().find_map(|l| {
        l.strip_prefix(name)
            .and_then(|rest| rest.strip_prefix(' '))
            .and_then(|v| v.parse().ok())
    })
}

#[test]
fn metrics_exposition_lints_and_counts_cells() {
    let state = tmp_dir("metrics");
    let cfg = ServeConfig {
        port: 0,
        state_dir: state.clone(),
        ..Default::default()
    };
    let (handle, addr) = start(cfg);

    // The endpoint is valid exposition before any job exists, and the
    // cell counters start from zero.
    let idle = client::metrics(&addr).expect("idle scrape");
    prom::lint(&idle).unwrap_or_else(|e| panic!("idle exposition fails lint: {e}\n{idle}"));
    assert_eq!(series_value(&idle, "melody_cells_done_total"), Some(0.0));
    assert_eq!(series_value(&idle, "melody_draining"), Some(0.0));
    assert!(
        series_value(&idle, "melody_uptime_seconds").is_some(),
        "{idle}"
    );

    let reply =
        client::submit(&addr, &tiny_spec_json("obs-metrics"), Some("ci"), None).expect("submit");
    let view = wait_done(&addr, &reply.job_id);
    assert_eq!(view.status, JobStatus::Done);
    let stats = view.stats.expect("finished jobs carry stats");

    // The acceptance counter: cells_done_total equals the finished
    // campaign's owned cell count, and the resolution split matches
    // the job's own stats.
    let text = client::metrics(&addr).expect("scrape");
    prom::lint(&text).unwrap_or_else(|e| panic!("exposition fails lint: {e}\n{text}"));
    assert_eq!(
        series_value(&text, "melody_cells_done_total"),
        Some(stats.owned as f64),
        "{text}"
    );
    assert_eq!(
        series_value(&text, "melody_cells_simulated_total"),
        Some(stats.simulated as f64)
    );
    assert_eq!(series_value(&text, "melody_jobs_accepted_total"), Some(1.0));
    assert!(text.contains("melody_jobs{status=\"done\"} 1"), "{text}");
    assert!(text.contains("melody_jobs{status=\"running\"} 0"), "{text}");
    assert!(
        text.contains("# TYPE melody_cells_done_total counter"),
        "{text}"
    );

    // The final progress snapshot is retained after completion and
    // agrees with the exposition.
    let progress = view.progress.expect("finished job keeps its snapshot");
    assert_eq!(progress.done, stats.owned);
    assert_eq!(progress.total, stats.owned);
    assert_eq!(progress.simulated, stats.simulated);

    handle.drain();
    handle.join();
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn job_progress_is_monotonic_and_health_carries_uptime() {
    let state = tmp_dir("monotonic");
    let cfg = ServeConfig {
        port: 0,
        state_dir: state.clone(),
        ..Default::default()
    };
    let (handle, addr) = start(cfg);

    let reply =
        client::submit(&addr, &tiny_spec_json("obs-monotonic"), None, None).expect("submit");
    let mut last_done = 0usize;
    let mut observations = 0usize;
    loop {
        let view = client::job_status(&addr, &reply.job_id).expect("status");
        if let Some(p) = view.progress {
            assert!(
                p.done >= last_done,
                "progress went backwards: {} -> {}",
                last_done,
                p.done
            );
            assert!(p.done <= p.total, "done {} > total {}", p.done, p.total);
            last_done = p.done;
            observations += 1;
        }
        if view.status.is_finished() {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(observations > 0, "never observed a progress snapshot");
    assert_eq!(last_done, 4, "final snapshot covers every cell");

    let health = client::health(&addr).expect("health");
    assert!(health.uptime_ms > 0, "uptime must be reported");
    assert!(
        health.progress.is_none(),
        "no job is running, so health carries no progress"
    );

    handle.drain();
    handle.join();
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn job_view_attributes_cache_hits_to_the_job() {
    let state = tmp_dir("cache-attr");
    let cache = tmp_dir("cache-attr-store");
    let cfg = ServeConfig {
        port: 0,
        state_dir: state.clone(),
        cache_dir: Some(cache.clone()),
        ..Default::default()
    };
    let (handle, addr) = start(cfg);

    let spec = tiny_spec_json("obs-cache");
    let first = client::submit(&addr, &spec, Some("ci"), None).expect("submit cold");
    let cold = wait_done(&addr, &first.job_id);
    let cold_cache = cold.cache.expect("cache-backed servers report the delta");
    assert_eq!(cold_cache.hits, 0, "cold run cannot hit");
    assert_eq!(cold_cache.misses, 4, "every cell misses then warms");

    let second = client::submit(&addr, &spec, Some("ci"), None).expect("submit warm");
    let warm = wait_done(&addr, &second.job_id);
    let warm_cache = warm.cache.expect("cache delta present");
    assert_eq!(warm_cache.hits, 4, "warm run is served from the cache");
    assert_eq!(warm_cache.misses, 0);
    let warm_stats = warm.stats.expect("stats");
    assert_eq!(warm_stats.cache_hits, 4);
    assert_eq!(warm_stats.simulated, 0);

    // The exposition's cache counters aggregate both runs.
    let text = client::metrics(&addr).expect("scrape");
    prom::lint(&text).unwrap_or_else(|e| panic!("exposition fails lint: {e}\n{text}"));
    assert_eq!(series_value(&text, "melody_cache_hits_total"), Some(4.0));
    assert_eq!(series_value(&text, "melody_cache_misses_total"), Some(4.0));
    assert_eq!(series_value(&text, "melody_cells_cache_total"), Some(4.0));

    handle.drain();
    handle.join();
    let _ = std::fs::remove_dir_all(&state);
    let _ = std::fs::remove_dir_all(&cache);
}
