//! CLI error-path regression tests: `melody diff` / `melody report`
//! given a directory or an empty file must exit 2 with a clear message,
//! not surface a raw deserialize error.

use std::process::Command;

fn melody() -> Command {
    Command::new(env!("CARGO_BIN_EXE_melody"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("melody-cli-{name}-{}", std::process::id()));
    p
}

#[test]
fn diff_rejects_directories_with_exit_2() {
    let dir = tmp("diff-dir");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let out = melody()
        .args([
            "diff",
            dir.to_str().expect("utf8"),
            dir.to_str().expect("utf8"),
        ])
        .output()
        .expect("run melody");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("is a directory"),
        "unclear message: {stderr}"
    );
    assert!(
        stderr.contains(dir.to_str().expect("utf8")),
        "message names the path: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn diff_rejects_empty_files_with_exit_2() {
    let a = tmp("diff-empty-a.json");
    let b = tmp("diff-empty-b.json");
    std::fs::write(&a, "").expect("write");
    std::fs::write(&b, "  \n").expect("write");
    let out = melody()
        .args(["diff", a.to_str().expect("utf8"), b.to_str().expect("utf8")])
        .output()
        .expect("run melody");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("empty file"), "unclear message: {stderr}");
    let _ = std::fs::remove_file(&a);
    let _ = std::fs::remove_file(&b);
}

#[test]
fn diff_still_reports_missing_files_with_exit_2() {
    let out = melody()
        .args([
            "diff",
            "/nonexistent/melody-a.json",
            "/nonexistent/melody-b.json",
        ])
        .output()
        .expect("run melody");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn report_rejects_directories_with_exit_2() {
    let dir = tmp("report-dir");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let out = melody()
        .args(["report", dir.to_str().expect("utf8")])
        .output()
        .expect("run melody");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("is a directory"),
        "unclear message: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn report_rejects_empty_files_with_exit_2() {
    let p = tmp("report-empty.json");
    std::fs::write(&p, "\n\n").expect("write");
    let out = melody()
        .args(["report", p.to_str().expect("utf8")])
        .output()
        .expect("run melody");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("empty file"), "unclear message: {stderr}");
    let _ = std::fs::remove_file(&p);
}

#[test]
fn campaign_requires_a_spec_and_validates_shards() {
    let out = melody().args(["campaign"]).output().expect("run melody");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("spec"));

    let spec = tmp("campaign-spec.json");
    std::fs::write(
        &spec,
        r#"{"name":"t","platforms":["emr2s"],"devices":["cxl-a"],"workloads":["541.leela"],"mem_refs":2000}"#,
    )
    .expect("write spec");
    let out = melody()
        .args([
            "campaign",
            spec.to_str().expect("utf8"),
            "--shard",
            "3/2",
            "--no-cache",
        ])
        .output()
        .expect("run melody");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("--shard"));
    let _ = std::fs::remove_file(&spec);
}

#[test]
fn campaign_no_cache_runs_and_renders() {
    let spec = tmp("campaign-smoke.json");
    std::fs::write(
        &spec,
        r#"{"name":"smoke","platforms":["emr2s"],"devices":["cxl-a"],"workloads":["541.leela"],"mem_refs":2000}"#,
    )
    .expect("write spec");
    let out = melody()
        .args(["campaign", spec.to_str().expect("utf8"), "--no-cache"])
        .output()
        .expect("run melody");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("campaign smoke"), "{stdout}");
    assert!(stdout.contains("541.leela"), "{stdout}");
    let _ = std::fs::remove_file(&spec);
}

// --- `melody submit` / `melody status` client error paths -----------
//
// The server-mode clients follow the same convention as the rest of
// the CLI: usage and connectivity problems exit 2 with a one-line,
// human-readable message on stderr.

#[test]
fn submit_requires_a_spec_file_with_exit_2() {
    let out = melody().arg("submit").output().expect("run melody");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("requires a spec file"), "{stderr}");
}

#[test]
fn submit_validates_the_spec_before_dialing_the_server() {
    let spec = tmp("submit-bad-spec.json");
    std::fs::write(&spec, "{\"definitely\":\"not a spec\"}").expect("write");
    // `--server` points nowhere: the local validation must fire first.
    let out = melody()
        .args([
            "submit",
            spec.to_str().expect("utf8"),
            "--server",
            "127.0.0.1:9",
        ])
        .output()
        .expect("run melody");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("not a campaign spec"), "{stderr}");
    let _ = std::fs::remove_file(&spec);
}

#[test]
fn submit_reports_unreachable_servers_with_exit_2() {
    let spec = tmp("submit-unreachable.json");
    std::fs::write(
        &spec,
        r#"{"name":"u","platforms":["emr2s"],"devices":["cxl-a"],"workloads":["541.leela"],"mem_refs":2000}"#,
    )
    .expect("write");
    let out = melody()
        .args([
            "submit",
            spec.to_str().expect("utf8"),
            "--server",
            "127.0.0.1:9",
        ])
        .output()
        .expect("run melody");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot reach melody server"), "{stderr}");
    let _ = std::fs::remove_file(&spec);
}

#[test]
fn status_reports_unreachable_servers_with_exit_2() {
    let out = melody()
        .args(["status", "--server", "127.0.0.1:9"])
        .output()
        .expect("run melody");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot reach melody server"), "{stderr}");
}

#[test]
fn status_reports_malformed_responses_with_exit_2() {
    use std::io::{Read as _, Write as _};

    // A fake "server" that answers valid HTTP framing with a body that
    // is not the expected JSON shape.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let t = std::thread::spawn(move || {
        if let Ok((mut conn, _)) = listener.accept() {
            let mut buf = [0u8; 4096];
            let _ = conn.read(&mut buf);
            let _ = conn.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 8\r\n\r\nnot-json");
        }
    });
    let out = melody()
        .args(["status", "--server", &addr])
        .output()
        .expect("run melody");
    t.join().expect("fake server thread");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("malformed server response"), "{stderr}");
}

#[test]
fn status_reports_unknown_job_ids_with_exit_2() {
    use std::io::{BufRead as _, BufReader};
    use std::process::Stdio;

    let state = tmp("status-unknown-state");
    let mut child = melody()
        .args([
            "serve",
            "--port",
            "0",
            "--state-dir",
            state.to_str().expect("utf8"),
            "--no-cache",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn melody serve");
    let mut banner = String::new();
    BufReader::new(child.stdout.take().expect("stdout"))
        .read_line(&mut banner)
        .expect("read banner");
    let addr = banner
        .trim()
        .strip_prefix("melody-serve: listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
        .to_string();

    let out = melody()
        .args(["status", "job-999999", "--server", &addr])
        .output()
        .expect("run melody");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown job"), "{stderr}");
    assert!(stderr.contains("job-999999"), "{stderr}");

    // `melody drain` shuts it down cleanly.
    let drained = melody()
        .args(["drain", "--server", &addr])
        .output()
        .expect("run melody drain");
    assert_eq!(
        drained.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&drained.stderr)
    );
    let status = child.wait().expect("server exits");
    assert!(status.success(), "{status:?}");
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn campaign_resume_warns_about_torn_journal_tails_and_still_matches() {
    let spec = tmp("torn-resume-spec.json");
    let journal = tmp("torn-resume.jsonl");
    std::fs::write(
        &spec,
        r#"{"name":"torn","platforms":["emr2s"],"devices":["cxl-a","numa"],"workloads":["541.leela"],"mem_refs":2000}"#,
    )
    .expect("write spec");
    let _ = std::fs::remove_file(&journal);
    let first = melody()
        .args([
            "campaign",
            spec.to_str().expect("utf8"),
            "--json",
            "--no-cache",
            "--journal",
            journal.to_str().expect("utf8"),
        ])
        .output()
        .expect("run melody");
    assert_eq!(
        first.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&first.stderr)
    );

    // Simulate a crash mid-append: a torn, unterminated half-record.
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&journal)
        .expect("open journal");
    f.write_all(b"{\"cell\":17,\"truncated")
        .expect("append torn tail");
    drop(f);

    let resumed = melody()
        .args([
            "campaign",
            spec.to_str().expect("utf8"),
            "--json",
            "--no-cache",
            "--journal",
            journal.to_str().expect("utf8"),
            "--resume",
        ])
        .output()
        .expect("run melody");
    assert_eq!(
        resumed.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains("dropped 1 torn trailing record"),
        "counted warning on --resume: {stderr}"
    );
    assert_eq!(
        String::from_utf8_lossy(&first.stdout),
        String::from_utf8_lossy(&resumed.stdout),
        "torn tail does not change the report bytes"
    );
    let _ = std::fs::remove_file(&spec);
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn campaign_json_with_telemetry_carries_exec_retry_counters() {
    let spec = tmp("telemetry-counters-spec.json");
    std::fs::write(
        &spec,
        r#"{"name":"tc","platforms":["emr2s"],"devices":["cxl-a"],"workloads":["541.leela"],"mem_refs":2000}"#,
    )
    .expect("write spec");
    let out = melody()
        .args([
            "campaign",
            spec.to_str().expect("utf8"),
            "--json",
            "--no-cache",
            "--telemetry",
            "metrics",
        ])
        .output()
        .expect("run melody");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The telemetry document wraps the report and carries the retry,
    // deadline, and cancellation counters from the execution layer.
    assert!(stdout.contains("\"report\""), "{stdout}");
    assert!(stdout.contains("exec.cell_retries_total"), "{stdout}");
    assert!(stdout.contains("exec.cell_deadlines_total"), "{stdout}");
    assert!(stdout.contains("exec.cells_cancelled_total"), "{stdout}");
    let _ = std::fs::remove_file(&spec);
}
