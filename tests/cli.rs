//! CLI error-path regression tests: `melody diff` / `melody report`
//! given a directory or an empty file must exit 2 with a clear message,
//! not surface a raw deserialize error.

use std::process::Command;

fn melody() -> Command {
    Command::new(env!("CARGO_BIN_EXE_melody"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("melody-cli-{name}-{}", std::process::id()));
    p
}

#[test]
fn diff_rejects_directories_with_exit_2() {
    let dir = tmp("diff-dir");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let out = melody()
        .args([
            "diff",
            dir.to_str().expect("utf8"),
            dir.to_str().expect("utf8"),
        ])
        .output()
        .expect("run melody");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("is a directory"),
        "unclear message: {stderr}"
    );
    assert!(
        stderr.contains(dir.to_str().expect("utf8")),
        "message names the path: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn diff_rejects_empty_files_with_exit_2() {
    let a = tmp("diff-empty-a.json");
    let b = tmp("diff-empty-b.json");
    std::fs::write(&a, "").expect("write");
    std::fs::write(&b, "  \n").expect("write");
    let out = melody()
        .args(["diff", a.to_str().expect("utf8"), b.to_str().expect("utf8")])
        .output()
        .expect("run melody");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("empty file"), "unclear message: {stderr}");
    let _ = std::fs::remove_file(&a);
    let _ = std::fs::remove_file(&b);
}

#[test]
fn diff_still_reports_missing_files_with_exit_2() {
    let out = melody()
        .args([
            "diff",
            "/nonexistent/melody-a.json",
            "/nonexistent/melody-b.json",
        ])
        .output()
        .expect("run melody");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn report_rejects_directories_with_exit_2() {
    let dir = tmp("report-dir");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let out = melody()
        .args(["report", dir.to_str().expect("utf8")])
        .output()
        .expect("run melody");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("is a directory"),
        "unclear message: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn report_rejects_empty_files_with_exit_2() {
    let p = tmp("report-empty.json");
    std::fs::write(&p, "\n\n").expect("write");
    let out = melody()
        .args(["report", p.to_str().expect("utf8")])
        .output()
        .expect("run melody");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("empty file"), "unclear message: {stderr}");
    let _ = std::fs::remove_file(&p);
}

#[test]
fn campaign_requires_a_spec_and_validates_shards() {
    let out = melody().args(["campaign"]).output().expect("run melody");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("spec"));

    let spec = tmp("campaign-spec.json");
    std::fs::write(
        &spec,
        r#"{"name":"t","platforms":["emr2s"],"devices":["cxl-a"],"workloads":["541.leela"],"mem_refs":2000}"#,
    )
    .expect("write spec");
    let out = melody()
        .args([
            "campaign",
            spec.to_str().expect("utf8"),
            "--shard",
            "3/2",
            "--no-cache",
        ])
        .output()
        .expect("run melody");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("--shard"));
    let _ = std::fs::remove_file(&spec);
}

#[test]
fn campaign_no_cache_runs_and_renders() {
    let spec = tmp("campaign-smoke.json");
    std::fs::write(
        &spec,
        r#"{"name":"smoke","platforms":["emr2s"],"devices":["cxl-a"],"workloads":["541.leela"],"mem_refs":2000}"#,
    )
    .expect("write spec");
    let out = melody()
        .args(["campaign", spec.to_str().expect("utf8"), "--no-cache"])
        .output()
        .expect("run melody");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("campaign smoke"), "{stdout}");
    assert!(stdout.contains("541.leela"), "{stdout}");
    let _ = std::fs::remove_file(&spec);
}
